//! Lowering physical plans onto the operator library and running them.
//!
//! The executor walks a [`PhysicalPlan`] bottom-up, building real
//! operator pipelines: coded paths become [`OvcStream`] stacks over
//! `ovc-exec`/`ovc-sort` operators, hash paths call the `ovc-baseline`
//! algorithms on materialized rows.  The boundary between the two worlds
//! is explicit in the plan (a hash operator's output is rows; a sort
//! brings rows back into the coded world), so the executor never guesses.
//!
//! [`ExecOptions::verify_trusted`] turns every [`PhysOp::TrustSorted`]
//! marker — an *elided sort* — into a checked assertion: the stream the
//! planner trusted is drained and audited with
//! [`ovc_core::derive::assert_codes_exact`] before flowing on.  The
//! planner property tests run with this enabled, which is what "every
//! elided sort is justified" means operationally.

use std::rc::Rc;

use ovc_core::derive::assert_codes_exact;
use ovc_core::{Ovc, OvcRow, OvcStream, Row, Stats, VecStream};
use ovc_exec::plans::in_sort_distinct;
use ovc_exec::{
    Dedup, Filter as FilterOp, GroupAggregate, MergeJoin, Project as ProjectOp, SetOperation,
};
use ovc_sort::{external_sort, MemoryRunStorage, SortConfig};

use crate::catalog::Catalog;
use crate::physical::{PhysOp, PhysicalPlan};

/// Executor knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Audit every elided sort: drain each trusted stream and panic
    /// unless its codes are exact (test harness for the planner).
    pub verify_trusted: bool,
}

/// What a (sub)plan produced: a coded sorted stream, or bare rows.
pub enum Output {
    /// Sorted stream carrying exact offset-value codes.
    Stream(Box<dyn OvcStream>),
    /// Materialized rows in arbitrary order (hash-side operators).
    Rows(Vec<Row>),
}

impl Output {
    /// Materialize as rows, dropping codes if present.
    pub fn into_rows(self) -> Vec<Row> {
        match self {
            Output::Stream(s) => s.map(|r| r.row).collect(),
            Output::Rows(rows) => rows,
        }
    }

    /// Materialize as coded rows; panics if this output is unordered
    /// (callers decide via the plan's properties, not by trial).
    pub fn into_coded(self) -> Vec<OvcRow> {
        match self {
            Output::Stream(s) => s.collect(),
            Output::Rows(_) => panic!("plan output is unordered; no codes to collect"),
        }
    }

    /// The coded stream; panics if this output is unordered.
    pub fn into_stream(self) -> Box<dyn OvcStream> {
        match self {
            Output::Stream(s) => s,
            Output::Rows(_) => panic!("plan output is unordered; not a coded stream"),
        }
    }

    /// Is this a coded stream?
    pub fn is_stream(&self) -> bool {
        matches!(self, Output::Stream(_))
    }
}

/// Run a physical plan against a catalog, accounting into `stats`.
///
/// Panics if the plan references tables missing from `catalog` or if its
/// structure violates operator contracts — both are planner bugs, not
/// runtime conditions, so they fail loudly.
pub fn execute(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    stats: &Rc<Stats>,
    options: &ExecOptions,
) -> Output {
    let cx = Cx {
        catalog,
        stats,
        options,
    };
    cx.run(plan)
}

/// As [`execute`], but demand a coded stream (the plan root must be
/// ordered; the planner's `Sort`/`TopK` roots and all merge-side plans
/// are).
pub fn execute_stream(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    stats: &Rc<Stats>,
    options: &ExecOptions,
) -> Box<dyn OvcStream> {
    execute(plan, catalog, stats, options).into_stream()
}

struct Cx<'a> {
    catalog: &'a Catalog,
    stats: &'a Rc<Stats>,
    options: &'a ExecOptions,
}

impl Cx<'_> {
    fn table(&self, name: &str) -> &crate::catalog::Table {
        self.catalog
            .get(name)
            .unwrap_or_else(|| panic!("plan references unknown table {name}"))
    }

    fn run(&self, plan: &PhysicalPlan) -> Output {
        match &plan.op {
            PhysOp::ScanRows { table } => Output::Rows(self.table(table).rows().to_vec()),
            PhysOp::ScanCoded { table } => {
                let t = self.table(table);
                let coded = t
                    .coded()
                    .unwrap_or_else(|| panic!("table {table} is not stored sorted"))
                    .to_vec();
                Output::Stream(Box::new(VecStream::from_coded(coded, t.sorted_key())))
            }
            PhysOp::SortOvc {
                input,
                key_len,
                memory_rows,
                fan_in,
                dop,
            } => {
                let rows = self.run(input).into_rows();
                if *dop > 1 {
                    // Parallel run generation over row-range slices: rows
                    // and codes are byte-identical to the serial sort
                    // (tests/parallel_properties.rs holds it to that).
                    Output::Stream(Box::new(ovc_sort::parallel::parallel_sort(
                        rows,
                        *key_len,
                        *dop,
                        *memory_rows,
                        *fan_in,
                        self.stats,
                    )))
                } else {
                    let mut storage = MemoryRunStorage::new(Rc::clone(self.stats));
                    let cfg = SortConfig::new(*key_len, *memory_rows).with_fan_in(*fan_in);
                    Output::Stream(Box::new(external_sort(rows, cfg, &mut storage, self.stats)))
                }
            }
            PhysOp::TrustSorted { input, key_len } => {
                let stream = self.run(input).into_stream();
                if self.options.verify_trusted {
                    // Audit the elision: the stream the planner trusted
                    // must carry exact codes at its own arity (which
                    // implies the required prefix ordering).
                    let arity = stream.key_len();
                    debug_assert!(*key_len <= arity);
                    let coded: Vec<OvcRow> = stream.collect();
                    let pairs: Vec<(Row, Ovc)> =
                        coded.iter().map(|r| (r.row.clone(), r.code)).collect();
                    assert_codes_exact(&pairs, arity);
                    Output::Stream(Box::new(VecStream::from_coded(coded, arity)))
                } else {
                    Output::Stream(stream)
                }
            }
            PhysOp::InSortDistinct {
                input,
                key_len,
                memory_rows,
                fan_in,
                dop,
            } => {
                let rows = self.run(input).into_rows();
                if *dop > 1 {
                    Output::Stream(Box::new(ovc_sort::parallel::parallel_sort_distinct(
                        rows,
                        *key_len,
                        *dop,
                        *memory_rows,
                        *fan_in,
                        self.stats,
                    )))
                } else {
                    let mut storage = MemoryRunStorage::new(Rc::clone(self.stats));
                    Output::Stream(Box::new(in_sort_distinct(
                        rows,
                        *key_len,
                        *memory_rows,
                        *fan_in,
                        &mut storage,
                        self.stats,
                    )))
                }
            }
            PhysOp::DedupCodes { input } => {
                let stream = self.run(input).into_stream();
                Output::Stream(Box::new(Dedup::new(stream)))
            }
            PhysOp::HashDistinct { input, memory_rows } => {
                let rows = self.run(input).into_rows();
                Output::Rows(ovc_baseline::hash_aggregate_distinct(
                    rows,
                    *memory_rows,
                    self.stats,
                ))
            }
            PhysOp::Filter { input, pred } => match self.run(input) {
                Output::Stream(s) => {
                    let p = pred.clone();
                    Output::Stream(Box::new(FilterOp::new(s, move |row: &Row| p.eval(row))))
                }
                Output::Rows(rows) => {
                    Output::Rows(rows.into_iter().filter(|r| pred.eval(r)).collect())
                }
            },
            PhysOp::Project {
                input,
                cols,
                surviving_key,
            } => match self.run(input) {
                Output::Stream(s) => {
                    let cols = cols.clone();
                    Output::Stream(Box::new(ProjectOp::new(
                        s,
                        *surviving_key,
                        move |row: &Row| row.project(&cols),
                    )))
                }
                Output::Rows(rows) => Output::Rows(rows.iter().map(|r| r.project(cols)).collect()),
            },
            PhysOp::GroupOvc {
                input,
                group_len,
                aggs,
            } => {
                let stream = self.run(input).into_stream();
                Output::Stream(Box::new(GroupAggregate::new(
                    stream,
                    *group_len,
                    aggs.clone(),
                )))
            }
            PhysOp::MergeJoinOvc {
                left,
                right,
                join_len,
                join_type,
            } => {
                let (lw, rw) = (left.props.width, right.props.width);
                let l = self.run(left).into_stream();
                let r = self.run(right).into_stream();
                Output::Stream(Box::new(MergeJoin::new(
                    l,
                    r,
                    *join_len,
                    *join_type,
                    lw,
                    rw,
                    Rc::clone(self.stats),
                )))
            }
            PhysOp::GraceHashJoin {
                left,
                right,
                join_len,
                memory_rows,
            } => {
                let l = self.run(left).into_rows();
                let r = self.run(right).into_rows();
                Output::Rows(ovc_baseline::grace_hash_join(
                    l,
                    r,
                    *join_len,
                    *memory_rows,
                    self.stats,
                ))
            }
            PhysOp::SetOpMerge { left, right, op } => {
                let l = self.run(left).into_stream();
                let r = self.run(right).into_stream();
                Output::Stream(Box::new(SetOperation::new(
                    l,
                    r,
                    *op,
                    Rc::clone(self.stats),
                )))
            }
            PhysOp::TopK { input, k } => {
                let stream = self.run(input).into_stream();
                Output::Stream(Box::new(TakeStream {
                    key_len: stream.key_len(),
                    inner: stream,
                    left: *k,
                }))
            }
        }
    }
}

/// First-`k` adapter: a prefix of a coded stream stays exactly coded.
struct TakeStream {
    inner: Box<dyn OvcStream>,
    key_len: usize,
    left: usize,
}

impl Iterator for TakeStream {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        self.inner.next()
    }
}

impl OvcStream for TakeStream {
    fn key_len(&self) -> usize {
        self.key_len
    }
}
