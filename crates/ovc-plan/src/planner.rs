//! The order-aware planner: logical algebra in, physical plan out.
//!
//! For every logical node the planner keeps (up to) two alternatives —
//! one whose output is **sorted and coded** on the node's natural key,
//! one with no order guarantee — and prices both with the cost model.
//! Operators that require physical properties go through enforcer-style
//! property matching:
//!
//! * **Ordering** (`Planner::ensure_ordered`, requirement expressed as
//!   a full [`SortSpec`]): when a child alternative already satisfies the
//!   spec with exact offset-value codes the planner **elides the sort**
//!   ([`PhysOp::TrustSorted`]); when the child carries exactly the
//!   *opposite* ordering it reuses the stream by reversal
//!   ([`PhysOp::Reverse`] — one linear re-priming pass, no sort); only
//!   otherwise does it insert a real [`PhysOp::SortOvc`] with
//!   direction-aware codes (or [`PhysOp::InSortDistinct`] when distinct
//!   semantics allow folding the dedup in).
//! * **Partitioning** (`Planner::exchange_to`): when the config grants
//!   a degree of parallelism and the input is large enough, merge
//!   joins, groupings, and set operations are bracketed with explicit
//!   [`PhysOp::Exchange`] nodes — hash-split the input(s) on the
//!   operator's key (join key, full group key, or whole row), run one
//!   worker per partition, gather with the order-preserving merging
//!   shuffle (the F1-Query-style exchange parallelism of Section 4.10).
//!
//! The elision justification is the property-propagation theorems of
//! [`ovc_core::theorem`] (order-preserving operators produce exact codes
//! from exact codes), and tests audit every marker with
//! [`ovc_core::derive::assert_codes_exact_spec`].
//!
//! This is the choice the paper's Section 6 evaluation makes by hand:
//! between the sort-based Figure 5 plan (interesting orderings + codes)
//! and the hash-based one (three blocking operators, rows spilled twice).

use std::fmt;

use ovc_core::{CostWeights, SortSpec};

use crate::catalog::Catalog;
use crate::cost::{self, Cost};
use crate::logical::{JoinType, Logical, LogicalPlan, SetOp};
use crate::physical::{Partitioning, PhysOp, PhysicalPlan, PhysicalProps};

/// Which side of the paper's comparison the planner may pick from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Preference {
    /// Pick by estimated cost (the planner's purpose).
    #[default]
    Auto,
    /// Use OVC sort-based operators wherever one exists (Figure 5 right).
    ForceSortBased,
    /// Use hash-based operators wherever one exists (Figure 5 left).
    ForceHashBased,
}

/// Planner knobs; also stamped into blocking operators at lowering time.
#[derive(Clone, Copy, Debug)]
pub struct PlannerConfig {
    /// Memory budget in rows per blocking operator.
    pub memory_rows: usize,
    /// Merge fan-in for external sorts.
    pub fan_in: usize,
    /// Physical-operator preference.
    pub preference: Preference,
    /// Weights folding estimated counters into one scalar.
    pub weights: CostWeights,
    /// Degree of parallelism available (1 = serial).  Sorts over at
    /// least [`PlannerConfig::parallel_threshold_rows`] estimated rows
    /// are stamped with this dop and lower onto `ovc_sort::parallel`'s
    /// sliced run generation; merge joins whose combined input clears
    /// the same threshold are bracketed with explicit
    /// [`PhysOp::Exchange`] nodes and run one worker per hash partition.
    pub dop: usize,
    /// Minimum estimated input rows before an operator goes parallel —
    /// below this, thread spawn and coordination outweigh the work (an
    /// uncounted wall-clock effect, hence a floor rather than a cost
    /// term).
    pub parallel_threshold_rows: usize,
    /// Rows per flat batch crossing exchange channels (`None` = the
    /// row-at-a-time exchange).  Stamped onto every [`PhysOp::Exchange`]
    /// the planner emits, priced with [`cost::exchange_batched`], and
    /// shown by `EXPLAIN`; pair it with
    /// [`crate::ExecOptions::batch_size`] to actually run the plan on
    /// the batched executor.
    pub batch_size: Option<usize>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            memory_rows: 4096,
            fan_in: 64,
            preference: Preference::Auto,
            weights: CostWeights::default(),
            dop: 1,
            parallel_threshold_rows: 4096,
            batch_size: None,
        }
    }
}

impl PlannerConfig {
    /// Override the memory budget.
    pub fn with_memory_rows(mut self, memory_rows: usize) -> Self {
        self.memory_rows = memory_rows.max(1);
        self
    }

    /// Override the merge fan-in.
    pub fn with_fan_in(mut self, fan_in: usize) -> Self {
        self.fan_in = fan_in.max(2);
        self
    }

    /// Override the preference.
    pub fn with_preference(mut self, preference: Preference) -> Self {
        self.preference = preference;
        self
    }

    /// Override the degree of parallelism.
    pub fn with_dop(mut self, dop: usize) -> Self {
        self.dop = dop.max(1);
        self
    }

    /// Override the row floor above which operators run parallel.
    pub fn with_parallel_threshold(mut self, rows: usize) -> Self {
        self.parallel_threshold_rows = rows;
        self
    }

    /// Request flat-batch exchanges of `rows` rows per batch.
    pub fn with_batch_size(mut self, rows: usize) -> Self {
        self.batch_size = Some(rows.max(1));
        self
    }
}

/// Why a logical plan could not be planned.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A scan references a table the catalog does not know.
    UnknownTable(String),
    /// Inputs or arguments violate an operator's schema contract.
    Schema(String),
    /// The request is well-formed but outside what the physical operator
    /// library can execute (e.g. a non-leading-prefix sort spec).
    Unsupported(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            PlanError::Schema(msg) => write!(f, "schema error: {msg}"),
            PlanError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Alternatives kept per logical node: at most one plan per interesting
/// physical-property class (the two-class core of a System-R style
/// optimizer — "no ordering" and "sorted + coded on the natural key").
struct Alts {
    ordered: Option<PhysicalPlan>,
    unordered: Option<PhysicalPlan>,
}

impl Alts {
    /// Cheapest available alternative (ordered wins ties: its extra
    /// properties are free at equal cost).
    fn best(self, w: &CostWeights) -> PhysicalPlan {
        match (self.ordered, self.unordered) {
            (Some(o), Some(u)) => {
                if o.cost.total(w) <= u.cost.total(w) {
                    o
                } else {
                    u
                }
            }
            (Some(o), None) => o,
            (None, Some(u)) => u,
            (None, None) => unreachable!("every node produces at least one alternative"),
        }
    }
}

/// The planner: borrows a catalog, holds a config.
pub struct Planner<'a> {
    catalog: &'a Catalog,
    config: PlannerConfig,
}

impl<'a> Planner<'a> {
    /// A planner over `catalog` with the given config.
    pub fn new(catalog: &'a Catalog, config: PlannerConfig) -> Self {
        Planner { catalog, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Plan a logical query, returning the cheapest physical plan.
    pub fn plan(&self, query: &LogicalPlan) -> Result<PhysicalPlan, PlanError> {
        Ok(self.alts(&query.root)?.best(&self.config.weights))
    }

    fn alts(&self, node: &Logical) -> Result<Alts, PlanError> {
        match node {
            Logical::Scan { table } => self.plan_scan(table),
            Logical::Filter { input, pred } => {
                let child = self.alts(input)?;
                let mk = |input: PhysicalPlan| {
                    let sel = pred.selectivity();
                    let props = PhysicalProps {
                        rows: input.props.rows * sel,
                        distinct_rows: (input.props.distinct_rows * sel).max(1.0),
                        ..input.props.clone()
                    };
                    let local = Cost {
                        col_cmps: input.props.rows, // predicate column accesses
                        ..cost::streaming(input.props.rows)
                    };
                    PhysicalPlan {
                        cost: input.cost.plus(&local),
                        props,
                        op: PhysOp::Filter {
                            input: Box::new(input),
                            pred: pred.clone(),
                        },
                    }
                };
                Ok(Alts {
                    ordered: child.ordered.map(mk),
                    unordered: child.unordered.map(mk),
                })
            }
            Logical::Project { input, cols } => self.plan_project(input, cols),
            Logical::Distinct { input } => self.plan_distinct(input),
            Logical::GroupBy {
                input,
                group_len,
                aggs,
            } => self.plan_group_by(input, *group_len, aggs),
            Logical::Join {
                left,
                right,
                join_len,
                join_type,
            } => self.plan_join(left, right, *join_len, *join_type),
            Logical::SetOperation { left, right, op } => self.plan_set_op(left, right, *op),
            Logical::Sort { input, spec } => {
                if !spec.is_prefix() {
                    return Err(PlanError::Unsupported(format!(
                        "sort spec {spec} is not a leading-column prefix; \
                         project the key columns to the front first"
                    )));
                }
                let child = self.alts(input)?;
                let plan = self.ensure_ordered(&child, spec, false)?;
                Ok(Alts {
                    ordered: Some(plan),
                    unordered: None,
                })
            }
            Logical::TopK { input, key_len, k } => {
                let child = self.alts(input)?;
                let input = self.ensure_ordered(&child, &SortSpec::asc(*key_len), false)?;
                let props = PhysicalProps {
                    rows: input.props.rows.min(*k as f64),
                    distinct_rows: input.props.distinct_rows.min(*k as f64),
                    ..input.props.clone()
                };
                let plan = PhysicalPlan {
                    cost: input.cost.plus(&cost::streaming(*k as f64)),
                    props,
                    op: PhysOp::TopK {
                        input: Box::new(input),
                        k: *k,
                    },
                };
                Ok(Alts {
                    ordered: Some(plan),
                    unordered: None,
                })
            }
        }
    }

    fn plan_scan(&self, table: &str) -> Result<Alts, PlanError> {
        let t = self
            .catalog
            .get(table)
            .ok_or_else(|| PlanError::UnknownTable(table.to_string()))?;
        let base = PhysicalProps {
            width: t.width(),
            order: SortSpec::none(),
            coded: false,
            partitioning: Partitioning::Single,
            rows: t.len() as f64,
            distinct_rows: t.distinct_rows() as f64,
            dop: 1,
        };
        let unordered = PhysicalPlan {
            op: PhysOp::ScanRows {
                table: table.to_string(),
            },
            props: base.clone(),
            cost: Cost::zero(),
        };
        let ordered = (!t.sort_spec().is_empty()).then(|| PhysicalPlan {
            op: PhysOp::ScanCoded {
                table: table.to_string(),
            },
            props: PhysicalProps {
                order: t.sort_spec().clone(),
                coded: true,
                ..base
            },
            cost: Cost::zero(),
        });
        Ok(Alts {
            ordered,
            unordered: Some(unordered),
        })
    }

    fn plan_project(&self, input: &Logical, cols: &[usize]) -> Result<Alts, PlanError> {
        let child = self.alts(input)?;
        let child_width = child
            .ordered
            .as_ref()
            .or(child.unordered.as_ref())
            .map(|p| p.props.width)
            .unwrap_or(0);
        if let Some(&bad) = cols.iter().find(|&&c| c >= child_width) {
            return Err(PlanError::Schema(format!(
                "projection references column {bad} of a {child_width}-column input"
            )));
        }
        // "If all columns in the sort key survive the projection, codes
        // are the same; if not, the offset must be limited to the prefix
        // that survives" (Section 4.2): the surviving key is the longest
        // prefix of the input sort key kept in place.
        let in_place = cols
            .iter()
            .enumerate()
            .take_while(|&(i, &c)| c == i)
            .count();
        let dropped = child_width.saturating_sub(cols.len()) as i32;
        let mk = |input: PhysicalPlan, surviving_key: usize| {
            let props = PhysicalProps {
                width: cols.len(),
                order: input.props.order.prefix(surviving_key),
                coded: input.props.coded && surviving_key > 0,
                partitioning: input.props.partitioning.clone(),
                rows: input.props.rows,
                distinct_rows: (input.props.distinct_rows * 0.8f64.powi(dropped)).max(1.0),
                dop: input.props.dop,
            };
            let local = cost::streaming(input.props.rows);
            PhysicalPlan {
                cost: input.cost.plus(&local),
                props,
                op: PhysOp::Project {
                    input: Box::new(input),
                    cols: cols.to_vec(),
                    surviving_key,
                },
            }
        };
        let Alts {
            ordered: child_ordered,
            unordered: child_unordered,
        } = child;
        let ordered = child_ordered.as_ref().and_then(|o| {
            let surviving = in_place.min(o.props.order.len());
            (surviving > 0).then(|| mk(o.clone(), surviving))
        });
        // A projection that destroys the ordering still lowers over an
        // ordered-only child (Sort, TopK, GroupBy outputs) as a plain
        // unordered projection.
        let unordered = child_unordered.map(|u| mk(u, 0)).or_else(|| {
            if ordered.is_none() {
                child_ordered.map(|o| mk(o, 0))
            } else {
                None
            }
        });
        Ok(Alts { ordered, unordered })
    }

    fn plan_distinct(&self, input: &Logical) -> Result<Alts, PlanError> {
        let child = self.alts(input)?;
        let (width, rows, distinct) = child_shape(&child);
        let w = &self.config.weights;

        // Sort-based: trust an existing full-row ordering (streaming dedup
        // by code inspection — one integer test per row) or fold the
        // dedup into the sort itself.
        let sorted = if self.config.preference == Preference::ForceHashBased {
            None
        } else {
            let ordered_in =
                self.ensure_ordered_alternatives(&child, &SortSpec::asc(width), true)?;
            Some(match ordered_in {
                Ensured::Trusted(plan) => {
                    let props = PhysicalProps {
                        rows: distinct,
                        distinct_rows: distinct,
                        ..plan.props.clone()
                    };
                    PhysicalPlan {
                        cost: plan.cost.plus(&cost::streaming(rows)),
                        props,
                        op: PhysOp::DedupCodes {
                            input: Box::new(plan),
                        },
                    }
                }
                Ensured::Sorted(plan) => plan, // InSortDistinct already dedups
            })
        };

        // Hash-based: arbitrary output order.
        let hashed = if self.config.preference == Preference::ForceSortBased {
            None
        } else {
            child_clone_best(&child, w).map(|input| {
                let local = cost::hash_distinct(rows, width, self.config.memory_rows);
                let props = PhysicalProps {
                    width,
                    order: SortSpec::none(),
                    coded: false,
                    partitioning: Partitioning::Single,
                    rows: distinct,
                    distinct_rows: distinct,
                    dop: input.props.dop,
                };
                PhysicalPlan {
                    cost: input.cost.plus(&local),
                    props,
                    op: PhysOp::HashDistinct {
                        input: Box::new(input),
                        memory_rows: self.config.memory_rows,
                    },
                }
            })
        };

        Ok(Alts {
            ordered: sorted,
            unordered: hashed,
        })
    }

    fn plan_group_by(
        &self,
        input: &Logical,
        group_len: usize,
        aggs: &[crate::logical::Aggregate],
    ) -> Result<Alts, PlanError> {
        let child = self.alts(input)?;
        let (width, rows, distinct) = child_shape(&child);
        if group_len > width {
            return Err(PlanError::Schema(format!(
                "group key of {group_len} columns exceeds input width {width}"
            )));
        }
        // Grouping exploits sorted coded input (Figure 4's operator); the
        // repository's hash side has no grouping aggregation, and the
        // paper's point is that it should not need one.
        let input = self.ensure_ordered(&child, &SortSpec::asc(group_len), false)?;
        let groups = distinct
            .powf(group_len as f64 / width.max(1) as f64)
            .min(rows)
            .max(1.0);
        // The partitioning enforcer, generalized from merge joins: with a
        // dop granted and enough rows (`partition_target`), bracket the
        // grouping with explicit exchanges — hash the input on the full
        // group key (equal group keys co-locate, so every group completes
        // inside one worker), group partition-wise on worker threads,
        // gather with the order-preserving merging shuffle.  Rows and
        // codes are dop-invariant.  An empty group key has nothing to
        // hash (one global group) and stays serial.
        let target = self.partition_target(group_len, rows, &[&input]);
        let (input, group_partitioning, group_dop) = match &target {
            Some(to) => (
                self.exchange_to(input, to.clone()),
                to.clone(),
                self.config.dop,
            ),
            None => (input, Partitioning::Single, 1),
        };
        let local = if target.is_some() {
            cost::group_parallel(rows, group_dop)
        } else {
            cost::streaming(rows)
        };
        let props = PhysicalProps {
            width: group_len + aggs.len(),
            order: SortSpec::asc(group_len),
            coded: true,
            partitioning: group_partitioning,
            rows: groups,
            distinct_rows: groups,
            dop: group_dop.max(input.props.dop),
        };
        let plan = PhysicalPlan {
            cost: input.cost.plus(&local),
            props,
            op: PhysOp::GroupOvc {
                input: Box::new(input),
                group_len,
                aggs: aggs.to_vec(),
            },
        };
        // Partitioned groupings gather back to a single stream so the
        // plan's output contract is layout-independent.
        let plan = if target.is_some() {
            self.exchange_to(plan, Partitioning::Single)
        } else {
            plan
        };
        Ok(Alts {
            ordered: Some(plan),
            unordered: None,
        })
    }

    /// The partition-parallel gate shared by the join, group-by, and
    /// set-operation enforcers: a dop granted, a non-empty hash key,
    /// enough rows to amortize thread coordination, and a plain
    /// ascending-prefix order on **every** input (the threaded exchange
    /// path is ascending-only — a trusted stream may carry a longer
    /// mixed-direction spec, and such operators run serial rather than
    /// risk a mis-specced shuffle).  Returns the hash layout to
    /// exchange into when all gates pass.
    fn partition_target(
        &self,
        hash_cols: usize,
        rows: f64,
        inputs: &[&PhysicalPlan],
    ) -> Option<Partitioning> {
        (self.config.dop > 1
            && hash_cols > 0
            && rows >= self.config.parallel_threshold_rows as f64
            && inputs.iter().all(|p| p.props.order.is_asc_prefix()))
        .then(|| Partitioning::Hash {
            cols: (0..hash_cols).collect(),
            parts: self.config.dop,
        })
    }

    /// Apply a granted partition target to a two-input operator:
    /// exchange both inputs into the hash layout, or leave them serial
    /// when no target was granted.  Returns the (possibly bracketed)
    /// inputs plus the operator's partitioning and dop.
    fn bracket_inputs(
        &self,
        li: PhysicalPlan,
        ri: PhysicalPlan,
        target: &Option<Partitioning>,
    ) -> (PhysicalPlan, PhysicalPlan, Partitioning, usize) {
        match target {
            Some(to) => (
                self.exchange_to(li, to.clone()),
                self.exchange_to(ri, to.clone()),
                to.clone(),
                self.config.dop,
            ),
            None => (li, ri, Partitioning::Single, 1),
        }
    }

    /// Wrap `input` in an explicit [`PhysOp::Exchange`] targeting `to`,
    /// with the exchange's code-repair overhead charged via
    /// [`cost::exchange`].
    fn exchange_to(&self, input: PhysicalPlan, to: Partitioning) -> PhysicalPlan {
        let parts = to.parts().max(input.props.partitioning.parts());
        let local = match self.config.batch_size {
            Some(b) => cost::exchange_batched(input.props.rows, parts, b),
            None => cost::exchange(input.props.rows, parts),
        };
        let props = PhysicalProps {
            partitioning: to.clone(),
            dop: input.props.dop.max(to.parts()),
            ..input.props.clone()
        };
        PhysicalPlan {
            cost: input.cost.plus(&local),
            props,
            op: PhysOp::Exchange {
                input: Box::new(input),
                to,
                batch: self.config.batch_size,
            },
        }
    }

    fn plan_join(
        &self,
        left: &Logical,
        right: &Logical,
        join_len: usize,
        join_type: JoinType,
    ) -> Result<Alts, PlanError> {
        let l = self.alts(left)?;
        let r = self.alts(right)?;
        let (lw, ln, ld) = child_shape(&l);
        let (rw, rn, rd) = child_shape(&r);
        if join_len > lw || join_len > rw {
            return Err(PlanError::Schema(format!(
                "join key of {join_len} columns exceeds input widths {lw}/{rw}"
            )));
        }
        let w = &self.config.weights;

        // Cardinality: containment assumption on the join key.
        let ld_key = ld.powf(join_len as f64 / lw.max(1) as f64).max(1.0);
        let rd_key = rd.powf(join_len as f64 / rw.max(1) as f64).max(1.0);
        let inner_rows = (ln * rn / ld_key.max(rd_key)).max(1.0);
        let (out_width, out_rows) = match join_type {
            JoinType::Inner => (lw + rw - join_len, inner_rows),
            JoinType::LeftOuter => (lw + rw - join_len, inner_rows + ln),
            JoinType::RightOuter => (lw + rw - join_len, inner_rows + rn),
            JoinType::FullOuter => (lw + rw - join_len, inner_rows + ln + rn),
            JoinType::LeftSemi | JoinType::LeftAnti => (lw, (ln * 0.5).max(1.0)),
        };

        let hash_allowed =
            join_type == JoinType::Inner && self.config.preference != Preference::ForceSortBased;
        let merge_allowed = !(hash_allowed && self.config.preference == Preference::ForceHashBased);

        let merged = if merge_allowed {
            let li = self.ensure_ordered(&l, &SortSpec::asc(join_len), false)?;
            let ri = self.ensure_ordered(&r, &SortSpec::asc(join_len), false)?;
            let order = match join_type {
                JoinType::LeftSemi | JoinType::LeftAnti => li.props.order.clone(),
                _ => SortSpec::asc(join_len),
            };
            // The partitioning enforcer: when `partition_target` grants
            // it, bracket the join with explicit exchanges — hash-co-
            // partition both inputs on the whole join key, join
            // partition pairs in parallel, gather with the order-
            // preserving merging shuffle.  Rows and codes are
            // dop-invariant (the gather merge reproduces the serial
            // sequence because equal join keys co-locate).
            let target = self.partition_target(join_len, ln + rn, &[&li, &ri]);
            let (li, ri, join_partitioning, join_dop) = self.bracket_inputs(li, ri, &target);
            let props = PhysicalProps {
                width: out_width,
                order,
                coded: true,
                partitioning: join_partitioning,
                rows: out_rows,
                distinct_rows: out_rows,
                dop: join_dop.max(li.props.dop).max(ri.props.dop),
            };
            let join = PhysicalPlan {
                cost: li
                    .cost
                    .plus(&ri.cost)
                    .plus(&cost::merge_streaming(ln, rn, join_len)),
                props,
                op: PhysOp::MergeJoinOvc {
                    left: Box::new(li),
                    right: Box::new(ri),
                    join_len,
                    join_type,
                },
            };
            // Partitioned joins gather back to a single stream so the
            // plan's output contract is layout-independent.
            Some(if target.is_some() {
                self.exchange_to(join, Partitioning::Single)
            } else {
                join
            })
        } else {
            None
        };

        let hashed = if hash_allowed {
            let li = child_clone_best(&l, w).expect("left alternatives");
            let ri = child_clone_best(&r, w).expect("right alternatives");
            let local = cost::grace_hash_join(ln, rn, join_len, self.config.memory_rows);
            let props = PhysicalProps {
                width: out_width,
                order: SortSpec::none(),
                coded: false,
                partitioning: Partitioning::Single,
                rows: out_rows,
                distinct_rows: out_rows,
                dop: li.props.dop.max(ri.props.dop),
            };
            Some(PhysicalPlan {
                cost: li.cost.plus(&ri.cost).plus(&local),
                props,
                op: PhysOp::GraceHashJoin {
                    left: Box::new(li),
                    right: Box::new(ri),
                    join_len,
                    memory_rows: self.config.memory_rows,
                },
            })
        } else {
            None
        };

        Ok(Alts {
            ordered: merged,
            unordered: hashed,
        })
    }

    fn plan_set_op(&self, left: &Logical, right: &Logical, op: SetOp) -> Result<Alts, PlanError> {
        let l = self.alts(left)?;
        let r = self.alts(right)?;
        let (lw, ln, ld) = child_shape(&l);
        let (rw, rn, rd) = child_shape(&r);
        if lw != rw {
            return Err(PlanError::Schema(format!(
                "set operands must have equal width, got {lw} and {rw}"
            )));
        }
        let w = &self.config.weights;
        let distinct_semantics = matches!(op, SetOp::Union | SetOp::Intersect | SetOp::Except);
        let out_rows = match op {
            SetOp::Union => (ld + rd) * 0.75,
            SetOp::UnionAll => ln + rn,
            SetOp::Intersect => ld.min(rd) * 0.5,
            SetOp::IntersectAll => ln.min(rn) * 0.5,
            SetOp::Except => (ld - rd * 0.5).max(1.0),
            SetOp::ExceptAll => (ln - rn * 0.5).max(1.0),
        }
        .max(1.0);

        // Hash-based lowering exists for INTERSECT (distinct): dedup both
        // sides, then an inner hash join on the whole row — exactly the
        // Figure 5 hash plan with its three blocking operators.
        let hash_allowed =
            op == SetOp::Intersect && self.config.preference != Preference::ForceSortBased;
        let merge_allowed = !(hash_allowed && self.config.preference == Preference::ForceHashBased);

        let merged = if merge_allowed {
            // Distinct set semantics allow (and profit from) in-sort
            // duplicate removal on each input; ALL-semantics must keep
            // multiplicities, so inputs get a plain sort.
            let li = self.ensure_ordered(&l, &SortSpec::asc(lw), distinct_semantics)?;
            let ri = self.ensure_ordered(&r, &SortSpec::asc(rw), distinct_semantics)?;
            // The partitioning enforcer: set semantics compare entire
            // rows, so hash both inputs on the full row width — equal
            // rows co-locate whichever side they come from, every key
            // group is local to one worker, and the gathered output
            // equals the serial operation byte for byte (the merge-join
            // argument verbatim, with "join key" = "whole row").
            let target = self.partition_target(lw, ln + rn, &[&li, &ri]);
            let (li, ri, set_partitioning, set_dop) = self.bracket_inputs(li, ri, &target);
            let local = if target.is_some() {
                cost::set_op_parallel(li.props.rows, ri.props.rows, lw, set_dop)
            } else {
                cost::merge_streaming(li.props.rows, ri.props.rows, lw)
            };
            let props = PhysicalProps {
                width: lw,
                order: SortSpec::asc(lw),
                coded: true,
                partitioning: set_partitioning,
                rows: out_rows,
                distinct_rows: out_rows.min(ld + rd),
                dop: set_dop.max(li.props.dop).max(ri.props.dop),
            };
            let set_plan = PhysicalPlan {
                cost: li.cost.plus(&ri.cost).plus(&local),
                props,
                op: PhysOp::SetOpMerge {
                    left: Box::new(li),
                    right: Box::new(ri),
                    op,
                },
            };
            // Partitioned set operations gather back to a single stream.
            Some(if target.is_some() {
                self.exchange_to(set_plan, Partitioning::Single)
            } else {
                set_plan
            })
        } else {
            None
        };

        let hashed = if hash_allowed {
            let mem = self.config.memory_rows;
            let mk_distinct = |alts: &Alts, rows: f64, distinct: f64| {
                child_clone_best(alts, w).map(|input| {
                    let local = cost::hash_distinct(rows, lw, mem);
                    let props = PhysicalProps {
                        width: lw,
                        order: SortSpec::none(),
                        coded: false,
                        partitioning: Partitioning::Single,
                        rows: distinct,
                        distinct_rows: distinct,
                        dop: input.props.dop,
                    };
                    PhysicalPlan {
                        cost: input.cost.plus(&local),
                        props,
                        op: PhysOp::HashDistinct {
                            input: Box::new(input),
                            memory_rows: mem,
                        },
                    }
                })
            };
            let li = mk_distinct(&l, ln, ld).expect("left alternatives");
            let ri = mk_distinct(&r, rn, rd).expect("right alternatives");
            let local = cost::grace_hash_join(ld, rd, lw, mem);
            let props = PhysicalProps {
                width: lw,
                order: SortSpec::none(),
                coded: false,
                partitioning: Partitioning::Single,
                rows: out_rows,
                distinct_rows: out_rows,
                dop: li.props.dop.max(ri.props.dop),
            };
            Some(PhysicalPlan {
                cost: li.cost.plus(&ri.cost).plus(&local),
                props,
                op: PhysOp::GraceHashJoin {
                    left: Box::new(li),
                    right: Box::new(ri),
                    join_len: lw,
                    memory_rows: mem,
                },
            })
        } else {
            None
        };

        Ok(Alts {
            ordered: merged,
            unordered: hashed,
        })
    }

    /// Make a plan whose output is sorted and coded under `spec`: trust
    /// an existing ordering when the properties prove it (sort
    /// **elided**), reuse an exactly-opposite ordering by reversal,
    /// otherwise insert a real sort — with in-sort duplicate removal
    /// when `distinct` semantics allow it.
    fn ensure_ordered(
        &self,
        child: &Alts,
        spec: &SortSpec,
        distinct: bool,
    ) -> Result<PhysicalPlan, PlanError> {
        Ok(
            match self.ensure_ordered_alternatives(child, spec, distinct)? {
                Ensured::Trusted(p) | Ensured::Sorted(p) => p,
            },
        )
    }

    fn ensure_ordered_alternatives(
        &self,
        child: &Alts,
        spec: &SortSpec,
        distinct: bool,
    ) -> Result<Ensured, PlanError> {
        let w = &self.config.weights;
        let (width, rows, distinct_rows) = child_shape(child);
        if spec.len() > width {
            return Err(PlanError::Schema(format!(
                "ordering on {} columns exceeds input width {width}",
                spec.len()
            )));
        }
        debug_assert!(spec.is_prefix(), "planner only requires prefix specs");
        if let Some(o) = &child.ordered {
            if o.props.satisfies_ordering(spec) {
                // The interesting ordering is already there and the codes
                // are exact by the operator theorems: elide the sort.
                let plan = PhysicalPlan {
                    props: o.props.clone(),
                    cost: o.cost,
                    op: PhysOp::TrustSorted {
                        input: Box::new(o.clone()),
                        spec: spec.clone(),
                    },
                };
                return Ok(Ensured::Trusted(plan));
            }
            // Opposite-direction reuse: a stream sorted on exactly the
            // reversed spec is this ordering read back to front — one
            // materialize-and-reverse plus a linear code re-priming pass
            // (N × K column accesses, no log factor, no spill) beats any
            // sort.  Distinct semantics skip this (a Reverse keeps
            // multiplicities; the in-sort dedup below is the better
            // deal).
            if !distinct && o.props.satisfies_ordering(&spec.reversed()) {
                let props = PhysicalProps {
                    order: spec.clone(),
                    coded: true,
                    ..o.props.clone()
                };
                let plan = PhysicalPlan {
                    cost: o.cost.plus(&cost::reverse(rows, spec.len())),
                    props,
                    op: PhysOp::Reverse {
                        input: Box::new(o.clone()),
                        spec: spec.clone(),
                    },
                };
                return Ok(Ensured::Sorted(plan));
            }
        }
        let input = child_clone_best(child, w).expect("alternatives exist");
        let mem = self.config.memory_rows;
        let fan = self.config.fan_in;
        let key_len = spec.len();
        // The degree-of-parallelism directive: a sort big enough to clear
        // the threshold is stamped with the config's dop and lowers onto
        // ovc_sort::parallel's sliced run generation — direction-aware
        // since `parallel_sort_spec`, so mixed asc/desc prefixes qualify
        // too; only normalized-key sorts still run serial.  Rows and
        // codes are identical either way; the estimate switches to the
        // parallel cost functions because the parallel lowering keeps
        // its runs resident (no spill — like every storage device in
        // this repository, "spilling" is accounting over in-memory
        // buffers, so residency changes the counters, not the RSS).
        let dop = if self.config.dop > 1
            && rows >= self.config.parallel_threshold_rows as f64
            && spec.is_prefix()
            && !spec.normalized()
        {
            self.config.dop
        } else {
            1
        };
        let plan = if distinct {
            let local = if dop > 1 {
                cost::in_sort_distinct_parallel(rows, distinct_rows, key_len, mem, fan, dop)
            } else {
                cost::in_sort_distinct(rows, distinct_rows, key_len, mem, fan)
            };
            let props = PhysicalProps {
                width,
                order: spec.clone(),
                coded: true,
                partitioning: Partitioning::Single,
                rows: distinct_rows,
                distinct_rows,
                dop: dop.max(input.props.dop),
            };
            PhysicalPlan {
                cost: input.cost.plus(&local),
                props,
                op: PhysOp::InSortDistinct {
                    input: Box::new(input),
                    spec: spec.clone(),
                    memory_rows: mem,
                    fan_in: fan,
                    dop,
                },
            }
        } else {
            let local = if dop > 1 {
                cost::sort_ovc_parallel(rows, key_len, mem, fan, dop)
            } else {
                cost::sort_ovc(rows, key_len, mem, fan)
            };
            let props = PhysicalProps {
                width,
                order: spec.clone(),
                coded: true,
                partitioning: Partitioning::Single,
                rows,
                distinct_rows,
                dop: dop.max(input.props.dop),
            };
            PhysicalPlan {
                cost: input.cost.plus(&local),
                props,
                op: PhysOp::SortOvc {
                    input: Box::new(input),
                    spec: spec.clone(),
                    memory_rows: mem,
                    fan_in: fan,
                    dop,
                },
            }
        };
        Ok(Ensured::Sorted(plan))
    }
}

enum Ensured {
    /// Requirement satisfied by existing properties (sort elided).
    Trusted(PhysicalPlan),
    /// A sort (possibly with in-sort dedup) or a reversal had to be
    /// inserted.
    Sorted(PhysicalPlan),
}

/// `(width, rows, distinct_rows)` of whichever alternative exists.
fn child_shape(alts: &Alts) -> (usize, f64, f64) {
    let p = alts
        .ordered
        .as_ref()
        .or(alts.unordered.as_ref())
        .expect("every node produces at least one alternative");
    (p.props.width, p.props.rows, p.props.distinct_rows)
}

/// Clone the cheaper alternative for use as an order-free input.
fn child_clone_best(alts: &Alts, w: &CostWeights) -> Option<PhysicalPlan> {
    match (&alts.ordered, &alts.unordered) {
        (Some(o), Some(u)) => Some(if o.cost.total(w) <= u.cost.total(w) {
            o.clone()
        } else {
            u.clone()
        }),
        (Some(o), None) => Some(o.clone()),
        (None, Some(u)) => Some(u.clone()),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Table;
    use crate::exec::{execute, ExecOptions};
    use crate::logical::Predicate;
    use ovc_core::{Direction, Row, Stats};

    fn catalog_with(rows: Vec<Vec<u64>>, sorted_key: usize) -> Catalog {
        let rows: Vec<Row> = rows.into_iter().map(Row::new).collect();
        let mut cat = Catalog::new();
        if sorted_key > 0 {
            let mut s = rows;
            s.sort();
            cat.register("t", Table::sorted(s, sorted_key));
        } else {
            cat.register("t", Table::unsorted(rows));
        }
        cat
    }

    /// Regression: a projection that destroys the ordering must still be
    /// plannable over a child with only an ordered alternative (Sort,
    /// TopK, GroupBy outputs), lowering as an unordered projection.
    #[test]
    fn project_dropping_the_key_over_sorted_only_child_plans() {
        let cat = catalog_with(vec![vec![3, 30], vec![1, 10], vec![2, 20]], 0);
        let q = LogicalPlan::scan("t").sort(1).project(vec![1]);
        let plan = Planner::new(&cat, PlannerConfig::default())
            .plan(&q)
            .expect("must plan");
        assert_eq!(plan.props.width, 1);
        assert!(plan.props.order.is_empty(), "ordering destroyed:\n{plan}");
        let stats = Stats::new_shared();
        let mut rows = execute(&plan, &cat, &stats, &ExecOptions::default()).into_rows();
        rows.sort();
        let expect: Vec<Row> = vec![Row::new(vec![10]), Row::new(vec![20]), Row::new(vec![30])];
        assert_eq!(rows, expect);
    }

    /// Projections keeping the key prefix in place keep order and codes.
    #[test]
    fn project_keeping_prefix_preserves_order_and_codes() {
        let cat = catalog_with(vec![vec![3, 30], vec![1, 10], vec![2, 20]], 2);
        let q = LogicalPlan::scan("t").project(vec![0]).sort(1);
        let plan = Planner::new(&cat, PlannerConfig::default())
            .plan(&q)
            .expect("must plan");
        assert_eq!(plan.count_op("SortOvc"), 0, "sort elided:\n{plan}");
        assert_eq!(plan.elided_sorts().len(), 1, "{plan}");
        let stats = Stats::new_shared();
        let out = execute(
            &plan,
            &cat,
            &stats,
            &ExecOptions {
                verify_trusted: true,
                ..Default::default()
            },
        )
        .into_rows();
        assert_eq!(
            out,
            vec![Row::new(vec![1]), Row::new(vec![2]), Row::new(vec![3])]
        );
    }

    /// Out-of-range projection columns are a schema error, not a panic.
    #[test]
    fn project_out_of_range_is_schema_error() {
        let cat = catalog_with(vec![vec![1, 2]], 0);
        let err = Planner::new(&cat, PlannerConfig::default())
            .plan(&LogicalPlan::scan("t").project(vec![5]))
            .unwrap_err();
        assert!(matches!(err, PlanError::Schema(_)), "{err}");
    }

    /// Filters compose with every downstream shape without losing the
    /// ordered alternative.
    #[test]
    fn filter_preserves_both_alternatives() {
        let cat = catalog_with(vec![vec![3, 1], vec![1, 1], vec![2, 1]], 2);
        let q = LogicalPlan::scan("t")
            .filter(Predicate::ColGt(0, 1))
            .sort(2);
        let plan = Planner::new(&cat, PlannerConfig::default())
            .plan(&q)
            .expect("plans");
        assert_eq!(plan.count_op("SortOvc"), 0, "filter keeps codes:\n{plan}");
        let stats = Stats::new_shared();
        let out = execute(
            &plan,
            &cat,
            &stats,
            &ExecOptions {
                verify_trusted: true,
                ..Default::default()
            },
        )
        .into_rows();
        assert_eq!(out, vec![Row::new(vec![2, 1]), Row::new(vec![3, 1])]);
    }

    /// A descending sort over an ascending-stored table reuses the
    /// stream by reversal instead of sorting.
    #[test]
    fn descending_sort_over_ascending_table_reverses() {
        let cat = catalog_with(vec![vec![3, 30], vec![1, 10], vec![2, 20]], 2);
        let q = LogicalPlan::scan("t").sort_by(SortSpec::desc(2));
        let plan = Planner::new(&cat, PlannerConfig::default())
            .plan(&q)
            .expect("plans");
        assert_eq!(plan.count_op("SortOvc"), 0, "no sort:\n{plan}");
        assert_eq!(plan.count_op("Reverse"), 1, "{plan}");
        assert_eq!(plan.props.order, SortSpec::desc(2));
        let stats = Stats::new_shared();
        let out = execute(&plan, &cat, &stats, &ExecOptions::default()).into_rows();
        assert_eq!(
            out,
            vec![
                Row::new(vec![3, 30]),
                Row::new(vec![2, 20]),
                Row::new(vec![1, 10])
            ]
        );
    }

    /// A mixed-direction sort with no reusable ordering gets a real
    /// direction-aware SortOvc stamped with the requested spec.
    #[test]
    fn mixed_direction_sort_inserts_direction_aware_sort() {
        let cat = catalog_with(vec![vec![3, 1], vec![1, 2], vec![3, 0], vec![1, 9]], 0);
        let spec = SortSpec::with_dirs(&[Direction::Desc, Direction::Asc]);
        let q = LogicalPlan::scan("t").sort_by(spec.clone());
        let plan = Planner::new(&cat, PlannerConfig::default())
            .plan(&q)
            .expect("plans");
        assert_eq!(plan.count_op("SortOvc"), 1, "{plan}");
        assert_eq!(plan.props.order, spec);
        assert!(plan.explain().contains("key=[c0 desc, c1 asc]"), "{plan}");
        let stats = Stats::new_shared();
        let out = execute(&plan, &cat, &stats, &ExecOptions::default()).into_rows();
        assert_eq!(
            out,
            vec![
                Row::new(vec![3, 0]),
                Row::new(vec![3, 1]),
                Row::new(vec![1, 2]),
                Row::new(vec![1, 9])
            ]
        );
    }

    /// Non-prefix sort specs are rejected with a typed error.
    #[test]
    fn non_prefix_sort_spec_is_unsupported() {
        let cat = catalog_with(vec![vec![1, 2]], 0);
        let spec = SortSpec::new(vec![(1, Direction::Asc)]);
        let err = Planner::new(&cat, PlannerConfig::default())
            .plan(&LogicalPlan::scan("t").sort_by(spec))
            .unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(_)), "{err}");
    }
}
