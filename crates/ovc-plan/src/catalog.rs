//! Named base tables and the statistics the planner reads off them.
//!
//! Section 4.11 of the paper: "Data access is a source of offset-value
//! codes as important as sorting."  A [`Table`] registered as *sorted*
//! derives its codes **once** (the storage-layer effort the paper says
//! scans should preserve) and every scan of it streams those codes for
//! free; an unsorted table only offers raw rows, and any interesting
//! ordering above it must be earned with a sort.

use std::collections::BTreeMap;
use std::collections::HashSet;

use ovc_core::derive::{derive_codes_spec, is_sorted_spec};
use ovc_core::{OvcRow, Row, SortSpec};

/// A base table plus the cheap exact statistics the cost model feeds on.
#[derive(Clone, Debug)]
pub struct Table {
    rows: Vec<Row>,
    /// Codes of `rows`, derived once at registration (sorted tables only).
    coded: Option<Vec<OvcRow>>,
    width: usize,
    /// Ordering contract the stored rows follow (empty = heap table).
    spec: SortSpec,
    /// Exact count of distinct full rows (one hash pass at registration).
    distinct_rows: usize,
}

impl Table {
    /// Register an unsorted heap table.
    pub fn unsorted(rows: Vec<Row>) -> Table {
        let width = rows.first().map(Row::width).unwrap_or(1);
        let distinct_rows = count_distinct(&rows);
        Table {
            rows,
            coded: None,
            width,
            spec: SortSpec::none(),
            distinct_rows,
        }
    }

    /// Register a table stored sorted ascending on its first
    /// `sorted_key` columns (shorthand for [`Table::sorted_by`]).
    pub fn sorted(rows: Vec<Row>, sorted_key: usize) -> Table {
        Table::sorted_by(rows, SortSpec::asc(sorted_key))
    }

    /// Register a table stored ordered under an explicit [`SortSpec`]
    /// (mixed ascending/descending directions supported).
    ///
    /// Codes are derived here, once — scans replay them without any
    /// column comparison (Section 4.11: data access is a source of codes
    /// as important as sorting).  Panics if the rows violate the spec.
    pub fn sorted_by(rows: Vec<Row>, spec: SortSpec) -> Table {
        assert!(
            spec.is_prefix(),
            "stored orderings must be leading-column prefixes, got {spec}"
        );
        assert!(
            is_sorted_spec(&rows, &spec),
            "Table::sorted_by requires rows ordered under {spec}"
        );
        let width = rows.first().map(Row::width).unwrap_or(spec.len().max(1));
        assert!(spec.len() <= width, "sort key cannot exceed the row width");
        let distinct_rows = count_distinct(&rows);
        let codes = derive_codes_spec(&rows, &spec);
        let coded = rows
            .iter()
            .cloned()
            .zip(codes)
            .map(|(row, code)| OvcRow::new(row, code))
            .collect();
        Table {
            rows,
            coded: Some(coded),
            width,
            spec,
            distinct_rows,
        }
    }

    /// Sort the rows on the full row and register the result (test and
    /// example convenience).
    pub fn sorted_from_unsorted(mut rows: Vec<Row>) -> Table {
        rows.sort();
        let width = rows.first().map(Row::width).unwrap_or(1);
        Table::sorted(rows, width)
    }

    /// The stored rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Pre-coded rows, when the table is stored sorted.
    pub fn coded(&self) -> Option<&[OvcRow]> {
        self.coded.as_deref()
    }

    /// Number of columns per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Leading columns the stored rows are sorted on (0 = unsorted).
    pub fn sorted_key(&self) -> usize {
        self.spec.len()
    }

    /// The ordering contract the stored rows follow (empty = heap).
    pub fn sort_spec(&self) -> &SortSpec {
        &self.spec
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Exact number of distinct full rows.
    pub fn distinct_rows(&self) -> usize {
        self.distinct_rows
    }
}

fn count_distinct(rows: &[Row]) -> usize {
    rows.iter().collect::<HashSet<_>>().len()
}

/// The planner's name → table mapping.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register `table` under `name`, replacing any previous entry.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> &mut Self {
        self.tables.insert(name.into(), table);
        self
    }

    /// Look a table up by name.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Names of all registered tables.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovc_core::derive::assert_codes_exact;
    use ovc_core::Ovc;

    #[test]
    fn sorted_table_precomputes_exact_codes() {
        let t = Table::sorted(ovc_core::table1::rows(), 4);
        assert_eq!(t.sorted_key(), 4);
        assert_eq!(t.width(), 4);
        assert_eq!(t.len(), 7);
        assert_eq!(t.distinct_rows(), 6); // Table 1 holds one duplicate
        let pairs: Vec<(Row, Ovc)> = t
            .coded()
            .expect("sorted table is coded")
            .iter()
            .map(|r| (r.row.clone(), r.code))
            .collect();
        assert_codes_exact(&pairs, 4);
    }

    #[test]
    #[should_panic(expected = "requires rows ordered under")]
    fn sorted_rejects_unsorted_rows() {
        let mut rows = ovc_core::table1::rows();
        rows.reverse();
        let _ = Table::sorted(rows, 4);
    }

    #[test]
    fn unsorted_table_has_no_codes() {
        let t = Table::unsorted(vec![Row::new(vec![3, 1]), Row::new(vec![1, 2])]);
        assert!(t.coded().is_none());
        assert_eq!(t.sorted_key(), 0);
        assert_eq!(t.width(), 2);
    }

    #[test]
    fn descending_table_precomputes_spec_codes() {
        use ovc_core::derive::assert_codes_exact_spec;
        let spec = SortSpec::desc(1);
        let rows: Vec<Row> = [[9u64, 0], [5, 1], [5, 2], [1, 3]]
            .iter()
            .map(|c| Row::new(c.to_vec()))
            .collect();
        let t = Table::sorted_by(rows, spec.clone());
        assert_eq!(t.sort_spec(), &spec);
        assert_eq!(t.sorted_key(), 1);
        let pairs: Vec<(Row, Ovc)> = t
            .coded()
            .expect("spec-sorted table is coded")
            .iter()
            .map(|r| (r.row.clone(), r.code))
            .collect();
        assert_codes_exact_spec(&pairs, &spec);
    }

    #[test]
    #[should_panic(expected = "ordered under")]
    fn sorted_by_rejects_spec_violations() {
        let rows = vec![Row::new(vec![1]), Row::new(vec![2])];
        let _ = Table::sorted_by(rows, SortSpec::desc(1));
    }

    #[test]
    fn catalog_registration_and_lookup() {
        let mut cat = Catalog::new();
        cat.register("t", Table::unsorted(vec![Row::new(vec![1])]));
        assert!(cat.get("t").is_some());
        assert!(cat.get("missing").is_none());
        assert_eq!(cat.table_names().collect::<Vec<_>>(), vec!["t"]);
    }

    #[test]
    fn empty_table_defaults() {
        let t = Table::unsorted(vec![]);
        assert_eq!(t.width(), 1);
        assert!(t.is_empty());
        assert_eq!(t.distinct_rows(), 0);
    }
}
