//! The planner's cost model, in the same units the runtime measures.
//!
//! The paper's efficiency claims are *counted*, not clocked: column-value
//! comparisons bounded by `N × K` (Section 3), offset-value-code
//! comparisons as single integer instructions, and spill volume as the
//! dominant expense of blocking operators (Figure 6).  This model
//! therefore estimates exactly the counter classes that
//! [`ovc_core::Stats`] accumulates, and folds them into a scalar with the
//! same [`CostWeights`] that [`ovc_core::StatsSnapshot::weighted_cost`]
//! applies to measured runs — predicted and observed costs share a scale.

use ovc_core::CostWeights;

/// Estimated counter totals for (a subtree of) a physical plan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cost {
    /// Column-value comparisons (including the hash-function column
    /// accesses the baselines charge to the same counter).
    pub col_cmps: f64,
    /// Offset-value-code comparisons (single integer instructions).
    pub ovc_cmps: f64,
    /// Full row comparisons (baseline algorithms).
    pub row_cmps: f64,
    /// Rows written to spill storage.
    pub spill_rows: f64,
    /// Rows read back from spill storage.
    pub read_rows: f64,
}

impl Cost {
    /// The zero cost.
    pub fn zero() -> Cost {
        Cost::default()
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &Cost) -> Cost {
        Cost {
            col_cmps: self.col_cmps + other.col_cmps,
            ovc_cmps: self.ovc_cmps + other.ovc_cmps,
            row_cmps: self.row_cmps + other.row_cmps,
            spill_rows: self.spill_rows + other.spill_rows,
            read_rows: self.read_rows + other.read_rows,
        }
    }

    /// Scalar total under the given weights.
    pub fn total(&self, w: &CostWeights) -> f64 {
        self.col_cmps * w.col_cmp
            + self.ovc_cmps * w.ovc_cmp
            + self.row_cmps * w.row_cmp
            + self.spill_rows * w.spill_row
            + self.read_rows * w.read_row
    }
}

fn log2(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// Spill passes of an external merge sort: `ceil(N / memory)` initial
/// runs; every row spills once when runs exist, plus once more per extra
/// merge level forced by the fan-in.
fn sort_spill_passes(rows: f64, memory_rows: usize, fan_in: usize) -> f64 {
    let runs = (rows / memory_rows.max(1) as f64).ceil();
    if runs <= 1.0 {
        return 0.0;
    }
    let mut passes = 1.0;
    let mut remaining = runs;
    while remaining > fan_in.max(2) as f64 {
        remaining = (remaining / fan_in.max(2) as f64).ceil();
        passes += 1.0;
    }
    passes
}

/// External OVC sort of `rows` uncoded rows with `key_len` key columns.
///
/// Column comparisons are bounded by `N × K` with no `log N` factor (the
/// Section 3 claim); the `log` factor lands on the cheap code
/// comparisons inside the tree-of-losers.
pub fn sort_ovc(rows: f64, key_len: usize, memory_rows: usize, fan_in: usize) -> Cost {
    let passes = sort_spill_passes(rows, memory_rows, fan_in);
    Cost {
        col_cmps: rows * key_len as f64,
        ovc_cmps: rows
            * (log2(memory_rows.min(rows.max(1.0) as usize).max(2) as f64)
                + passes * log2(fan_in as f64)),
        row_cmps: 0.0,
        spill_rows: rows * passes,
        read_rows: rows * passes,
    }
}

/// In-sort duplicate removal (the Figure 5 blocking operator): like
/// [`sort_ovc`], but runs are deduplicated by code inspection *before*
/// they spill, so no spilled run holds more than `distinct` rows.
pub fn in_sort_distinct(
    rows: f64,
    distinct: f64,
    key_len: usize,
    memory_rows: usize,
    fan_in: usize,
) -> Cost {
    let base = sort_ovc(rows, key_len, memory_rows, fan_in);
    let runs = (rows / memory_rows.max(1) as f64).ceil();
    let spilled = if runs <= 1.0 {
        0.0
    } else {
        // Each initial run carries at most `distinct` rows after in-run
        // dedup; later merge levels shrink towards `distinct` total.
        (runs * distinct.min(memory_rows as f64)).min(base.spill_rows)
    };
    Cost {
        spill_rows: spilled,
        read_rows: spilled,
        ..base
    }
}

/// Hash-based duplicate removal: hashes every row (charged as column
/// accesses, as the baseline counts them) and, over budget, partitions
/// **all** input rows to storage before deduplicating partitions.
pub fn hash_distinct(rows: f64, width: usize, memory_rows: usize) -> Cost {
    let over = rows > memory_rows as f64;
    Cost {
        col_cmps: rows * width as f64,
        ovc_cmps: 0.0,
        row_cmps: rows * 0.5, // bucket-collision equality probes
        spill_rows: if over { rows } else { 0.0 },
        read_rows: if over { rows } else { 0.0 },
    }
}

/// Grace hash join: hashes both inputs on the join key and, over budget,
/// partitions both sides to storage — the second spill of the Figure 6
/// "many rows are spilled twice" observation.  The implementation builds
/// on the smaller input, so only `min(left, right)` against the budget
/// decides whether anything spills.
pub fn grace_hash_join(
    left_rows: f64,
    right_rows: f64,
    join_len: usize,
    memory_rows: usize,
) -> Cost {
    let total = left_rows + right_rows;
    let over = left_rows.min(right_rows) > memory_rows as f64;
    Cost {
        col_cmps: total * join_len as f64,
        ovc_cmps: 0.0,
        row_cmps: right_rows * 0.5,
        spill_rows: if over { total } else { 0.0 },
        read_rows: if over { total } else { 0.0 },
    }
}

/// Merge join / merge set operation over two sorted coded inputs: a
/// streaming two-way merge deciding almost everything by code comparison.
pub fn merge_streaming(left_rows: f64, right_rows: f64, key_len: usize) -> Cost {
    let total = left_rows + right_rows;
    Cost {
        // Equal codes occasionally force column comparisons; a small
        // fraction of rows pays a key-length worth of them.
        col_cmps: total * 0.25 * key_len as f64,
        ovc_cmps: total * 2.0,
        row_cmps: 0.0,
        spill_rows: 0.0,
        read_rows: 0.0,
    }
}

/// Streaming one-input operators that only run the filter-theorem
/// accumulator per row (filter, project, dedup, group, top-k).
pub fn streaming(rows: f64) -> Cost {
    Cost {
        ovc_cmps: rows,
        ..Cost::zero()
    }
}

/// Order-preserving exchange around a `parts`-way parallel operator
/// (Section 4.10): every row pays one accumulator `max` on the splitting
/// side and `log2(parts)` code comparisons in the merging tree-of-losers.
///
/// This prices the *threaded exchange operators* of
/// `ovc_exec::parallel` (used when plans place explicit exchanges —
/// ROADMAP).  The parallel sorts run no exchange, so
/// [`sort_ovc_parallel`] / [`in_sort_distinct_parallel`] deliberately do
/// **not** include this term: estimates describe the chosen lowering.
pub fn exchange(rows: f64, parts: usize) -> Cost {
    if parts <= 1 {
        return Cost::zero();
    }
    Cost {
        ovc_cmps: rows * (1.0 + log2(parts as f64)),
        ..Cost::zero()
    }
}

/// Flat-batch exchange ([`crate::PhysOp::Exchange`] with a stamped batch
/// size): the accumulator/merge comparator work is the same `rows ×
/// log2(parts)` as [`exchange`], but the per-row channel crossing — the
/// `+1` term above — collapses to one crossing per `batch`-row message.
/// Cheaper than the row exchange for any `batch > 1`, equal at
/// `batch == 1`.
pub fn exchange_batched(rows: f64, parts: usize, batch: usize) -> Cost {
    if parts <= 1 {
        return Cost::zero();
    }
    Cost {
        ovc_cmps: rows * log2(parts as f64) + rows / batch.max(1) as f64,
        ..Cost::zero()
    }
}

/// Opposite-direction reuse (`PhysOp::Reverse`): materialize, reverse,
/// and re-prime codes in one linear pass — `rows × key_len` column
/// accesses (the derivation bound) plus one accumulator op per row, no
/// `log N` factor, no spill.  Always cheaper than the sort it replaces.
pub fn reverse(rows: f64, key_len: usize) -> Cost {
    Cost {
        col_cmps: rows * key_len as f64,
        ovc_cmps: rows,
        ..Cost::zero()
    }
}

/// Partition-parallel in-stream grouping
/// (`ovc_exec::parallel::group_partitions` behind an exchange sandwich):
/// each of the `rows` input rows pays its one code-inspection boundary
/// test in exactly one partition, so the counted work is dop-invariant
/// and equals the serial [`streaming`] estimate.  The surrounding
/// splitting/gathering shuffles are explicit plan nodes priced by
/// [`exchange`]; nothing spills either way.  `_dop` stays in the
/// signature for when wall-clock-aware costing (ROADMAP) makes the
/// estimate dop-sensitive.
pub fn group_parallel(rows: f64, _dop: usize) -> Cost {
    streaming(rows)
}

/// Partition-parallel merge set operation
/// (`ovc_exec::parallel::set_op_partitions` behind an exchange
/// sandwich): every row flows through exactly one partition's two-way
/// merge, so comparison totals match the serial [`merge_streaming`]
/// estimate — the exchanges around it are priced separately on their
/// own plan nodes, mirroring the partitioned merge join.
pub fn set_op_parallel(left_rows: f64, right_rows: f64, key_len: usize, _dop: usize) -> Cost {
    merge_streaming(left_rows, right_rows, key_len)
}

/// Parallel OVC sort (`ovc_sort::parallel::parallel_sort`): run
/// generation on `dop` worker slices, then the same in-memory
/// bounded-fan-in cascade the serial estimate already counts.
/// Comparison terms carry over unchanged (same per-run budget, same
/// `N × K` bound, same merge levels — the lowering runs no exchange,
/// so none is charged); but the parallel lowering keeps every run
/// resident, so — unlike [`sort_ovc`] — **nothing spills**, and the
/// estimate must say so or `Preference::Auto` would reject spill-free
/// parallel sort plans on phantom I/O.  `_dop` stays in the signature
/// for when parallel spilling (ROADMAP) makes cost dop-sensitive.
pub fn sort_ovc_parallel(
    rows: f64,
    key_len: usize,
    memory_rows: usize,
    fan_in: usize,
    _dop: usize,
) -> Cost {
    let serial = sort_ovc(rows, key_len, memory_rows, fan_in);
    Cost {
        spill_rows: 0.0,
        read_rows: 0.0,
        ..serial
    }
}

/// Parallel in-sort duplicate removal
/// (`ovc_sort::parallel::parallel_sort_distinct`): as
/// [`sort_ovc_parallel`], with the dedup folded into run generation and
/// every merge level.  Spill-free for the same reason.
pub fn in_sort_distinct_parallel(
    rows: f64,
    distinct: f64,
    key_len: usize,
    memory_rows: usize,
    fan_in: usize,
    _dop: usize,
) -> Cost {
    let serial = in_sort_distinct(rows, distinct, key_len, memory_rows, fan_in);
    Cost {
        spill_rows: 0.0,
        read_rows: 0.0,
        ..serial
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: CostWeights = CostWeights {
        col_cmp: 4.0,
        ovc_cmp: 1.0,
        row_cmp: 8.0,
        spill_row: 128.0,
        read_row: 64.0,
    };

    #[test]
    fn in_memory_sort_never_spills() {
        let c = sort_ovc(1000.0, 3, 2000, 64);
        assert_eq!(c.spill_rows, 0.0);
        assert!(c.col_cmps <= 3000.0, "N*K bound");
    }

    #[test]
    fn spilling_sort_pays_one_pass_with_wide_fan_in() {
        let c = sort_ovc(10_000.0, 2, 1000, 64);
        assert_eq!(c.spill_rows, 10_000.0);
        // Narrow fan-in forces another level.
        let c2 = sort_ovc(10_000.0, 2, 100, 4);
        assert!(c2.spill_rows > 10_000.0);
    }

    #[test]
    fn in_sort_distinct_spills_less_with_few_distinct_values() {
        let dup_heavy = in_sort_distinct(10_000.0, 50.0, 1, 1000, 64);
        let all_distinct = in_sort_distinct(10_000.0, 10_000.0, 1, 1000, 64);
        assert!(dup_heavy.spill_rows < all_distinct.spill_rows / 10.0);
        assert!(all_distinct.spill_rows <= 10_000.0);
    }

    #[test]
    fn hash_plan_costs_more_than_sort_plan_when_spilling() {
        // The Figure 6 configuration: memory a tenth of the input, mostly
        // distinct rows.  Hash distinct + hash join spill everything twice;
        // in-sort distinct + merge join spill each row at most once.
        let n = 5000.0;
        let mem = 500;
        let hash = hash_distinct(n, 1, mem)
            .plus(&hash_distinct(n, 1, mem))
            .plus(&grace_hash_join(n * 0.8, n * 0.8, 1, mem));
        let sort = in_sort_distinct(n, 4000.0, 1, mem, 64)
            .plus(&in_sort_distinct(n, 4000.0, 1, mem, 64))
            .plus(&merge_streaming(n * 0.8, n * 0.8, 1));
        assert!(
            hash.total(&W) > sort.total(&W),
            "hash {} must exceed sort {}",
            hash.total(&W),
            sort.total(&W)
        );
    }

    #[test]
    fn grace_join_spills_only_when_the_smaller_side_overflows() {
        // The implementation builds on the smaller input: a tiny build
        // side means no spilling no matter how large the probe side is.
        let c = grace_hash_join(10_000.0, 100.0, 1, 500);
        assert_eq!(c.spill_rows, 0.0);
        let c = grace_hash_join(100.0, 10_000.0, 1, 500);
        assert_eq!(c.spill_rows, 0.0);
        // Both sides over budget: both spill.
        let c = grace_hash_join(10_000.0, 8_000.0, 1, 500);
        assert_eq!(c.spill_rows, 18_000.0);
    }

    #[test]
    fn small_inputs_favour_cheap_plans_either_way() {
        let c = hash_distinct(10.0, 1, 100);
        assert_eq!(c.spill_rows, 0.0);
        let s = merge_streaming(10.0, 10.0, 1);
        assert_eq!(s.spill_rows, 0.0);
    }

    #[test]
    fn exchange_overhead_is_small_and_serial_free() {
        assert_eq!(exchange(10_000.0, 1), Cost::zero());
        let c = exchange(10_000.0, 4);
        assert_eq!(c.spill_rows, 0.0, "exchanges never spill");
        assert_eq!(c.col_cmps, 0.0, "exchanges never touch column values");
        // The overhead stays a sliver of the sort it parallelizes.
        let sort = sort_ovc(10_000.0, 2, 1000, 64);
        assert!(c.total(&W) < sort.total(&W) / 4.0);
    }

    #[test]
    fn parallel_sorts_are_priced_spill_free() {
        // The parallel lowerings keep runs resident: the estimate must
        // drop the serial spill term (or Auto would reject parallel sort
        // plans on I/O they never perform) while keeping comparisons.
        let serial = sort_ovc(50_000.0, 2, 1000, 64);
        let parallel = sort_ovc_parallel(50_000.0, 2, 1000, 64, 4);
        assert!(serial.spill_rows > 0.0);
        assert_eq!(parallel.spill_rows, 0.0);
        assert_eq!(parallel.read_rows, 0.0);
        assert_eq!(parallel.col_cmps, serial.col_cmps);
        // No exchange runs in the parallel sort lowering, so none is
        // charged: comparison estimates carry over verbatim.
        assert_eq!(parallel.ovc_cmps, serial.ovc_cmps);
        // Spill-free parallel sort prices below the spilling serial one.
        assert!(parallel.total(&W) < serial.total(&W));

        let d_serial = in_sort_distinct(50_000.0, 40_000.0, 1, 1000, 64);
        let d_parallel = in_sort_distinct_parallel(50_000.0, 40_000.0, 1, 1000, 64, 4);
        assert!(d_serial.spill_rows > 0.0);
        assert_eq!(d_parallel.spill_rows, 0.0);
    }

    #[test]
    fn parallel_group_and_set_op_counts_are_dop_invariant() {
        // The partitioned lowerings run the same total comparisons as
        // their serial forms (each row visits exactly one partition);
        // only the explicit exchange nodes add overhead, priced apart.
        let g = group_parallel(10_000.0, 4);
        assert_eq!(g, streaming(10_000.0));
        assert_eq!(g.spill_rows, 0.0);
        let s = set_op_parallel(5_000.0, 4_000.0, 2, 4);
        assert_eq!(s, merge_streaming(5_000.0, 4_000.0, 2));
        // A bracketed operator plus its two splits and gather stays far
        // below what a spilling blocking operator would cost.
        let bracketed = s
            .plus(&exchange(9_000.0, 4))
            .plus(&exchange(9_000.0, 4))
            .plus(&exchange(9_000.0, 4));
        let sort = sort_ovc(9_000.0, 2, 500, 8);
        assert!(bracketed.total(&W) < sort.total(&W));
    }

    #[test]
    fn reversal_prices_below_the_sort_it_replaces() {
        let n = 20_000.0;
        let rev = reverse(n, 3);
        let sort = sort_ovc(n, 3, 1000, 64);
        assert_eq!(rev.spill_rows, 0.0);
        assert!(rev.total(&W) < sort.total(&W));
    }

    #[test]
    fn cost_arithmetic() {
        let a = Cost {
            col_cmps: 1.0,
            ovc_cmps: 2.0,
            row_cmps: 3.0,
            spill_rows: 4.0,
            read_rows: 5.0,
        };
        let b = a.plus(&a);
        assert_eq!(b.col_cmps, 2.0);
        assert_eq!(b.total(&W), 2.0 * a.total(&W));
        assert_eq!(Cost::zero().total(&W), 0.0);
    }
}
