//! The logical algebra and its builder API.
//!
//! A [`LogicalPlan`] says *what* to compute; it never mentions hashing,
//! sorting effort, or offset-value codes.  The planner
//! ([`crate::planner::Planner`]) decides *how*: which physical operator
//! implements each node, where sorts are required, and — the point of the
//! paper — where an interesting ordering plus exact codes makes a sort
//! unnecessary.

use std::fmt;

use ovc_core::{Row, SortSpec, Value};
pub use ovc_exec::{Aggregate, JoinType, SetOp};

/// A predicate over single rows, built from column comparisons.
///
/// Kept as data (not a closure) so plans can be printed, costed with a
/// selectivity estimate, and cloned into forced-variant plans.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// `row[col] == value`
    ColEq(usize, Value),
    /// `row[col] != value`
    ColNe(usize, Value),
    /// `row[col] < value`
    ColLt(usize, Value),
    /// `row[col] <= value`
    ColLe(usize, Value),
    /// `row[col] > value`
    ColGt(usize, Value),
    /// `row[col] >= value`
    ColGe(usize, Value),
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Evaluate against one row.
    pub fn eval(&self, row: &Row) -> bool {
        self.eval_slice(row.cols())
    }

    /// Evaluate against a row's raw columns — the flat-batch path, where
    /// rows live as slices of a contiguous buffer and never box up.
    pub fn eval_slice(&self, cols: &[Value]) -> bool {
        match self {
            Predicate::ColEq(c, v) => cols[*c] == *v,
            Predicate::ColNe(c, v) => cols[*c] != *v,
            Predicate::ColLt(c, v) => cols[*c] < *v,
            Predicate::ColLe(c, v) => cols[*c] <= *v,
            Predicate::ColGt(c, v) => cols[*c] > *v,
            Predicate::ColGe(c, v) => cols[*c] >= *v,
            Predicate::And(a, b) => a.eval_slice(cols) && b.eval_slice(cols),
            Predicate::Or(a, b) => a.eval_slice(cols) || b.eval_slice(cols),
        }
    }

    /// Textbook selectivity guess in `(0, 1]` (equality is rare, ranges
    /// keep half, conjunction multiplies, disjunction adds).
    pub fn selectivity(&self) -> f64 {
        match self {
            Predicate::ColEq(..) => 0.1,
            Predicate::ColNe(..) => 0.9,
            Predicate::ColLt(..)
            | Predicate::ColLe(..)
            | Predicate::ColGt(..)
            | Predicate::ColGe(..) => 0.5,
            Predicate::And(a, b) => a.selectivity() * b.selectivity(),
            Predicate::Or(a, b) => (a.selectivity() + b.selectivity()).min(1.0),
        }
    }

    /// Conjunction convenience.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction convenience.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::ColEq(c, v) => write!(f, "c{c} = {v}"),
            Predicate::ColNe(c, v) => write!(f, "c{c} != {v}"),
            Predicate::ColLt(c, v) => write!(f, "c{c} < {v}"),
            Predicate::ColLe(c, v) => write!(f, "c{c} <= {v}"),
            Predicate::ColGt(c, v) => write!(f, "c{c} > {v}"),
            Predicate::ColGe(c, v) => write!(f, "c{c} >= {v}"),
            Predicate::And(a, b) => write!(f, "({a} and {b})"),
            Predicate::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

/// One node of the logical algebra.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub enum Logical {
    /// Read a named base table.
    Scan {
        /// Catalog name of the table.
        table: String,
    },
    /// Keep rows satisfying the predicate.
    Filter {
        /// Input relation.
        input: Box<Logical>,
        /// Row predicate.
        pred: Predicate,
    },
    /// Emit the given columns, in order.
    Project {
        /// Input relation.
        input: Box<Logical>,
        /// Indices of the columns to keep.
        cols: Vec<usize>,
    },
    /// Join on the leading `join_len` columns of both sides.
    Join {
        /// Left input.
        left: Box<Logical>,
        /// Right input.
        right: Box<Logical>,
        /// Number of leading join-key columns.
        join_len: usize,
        /// SQL join type.
        join_type: JoinType,
    },
    /// Group on the leading `group_len` columns and aggregate.
    GroupBy {
        /// Input relation.
        input: Box<Logical>,
        /// Number of leading grouping columns.
        group_len: usize,
        /// Aggregates appended after the group key.
        aggs: Vec<Aggregate>,
    },
    /// Remove duplicate rows (whole-row semantics).
    Distinct {
        /// Input relation.
        input: Box<Logical>,
    },
    /// SQL set operation over schema-identical inputs.
    SetOperation {
        /// Left input.
        left: Box<Logical>,
        /// Right input.
        right: Box<Logical>,
        /// Which operation.
        op: SetOp,
    },
    /// Demand the output ordered under a full [`SortSpec`]: per-column
    /// directions plus an optional normalized-key encoding request.
    Sort {
        /// Input relation.
        input: Box<Logical>,
        /// The required ordering.
        spec: SortSpec,
    },
    /// The first `k` rows under the leading-`key_len` ordering.
    TopK {
        /// Input relation.
        input: Box<Logical>,
        /// Number of leading sort-key columns.
        key_len: usize,
        /// How many rows to keep.
        k: usize,
    },
}

/// Builder wrapper: compose logical plans fluently.
///
/// ```
/// use ovc_plan::logical::{LogicalPlan, Predicate, SetOp};
///
/// // Figure 5: select B from T1 intersect select B from T2.
/// let q = LogicalPlan::scan("t1").set_op(LogicalPlan::scan("t2"), SetOp::Intersect);
/// let _pretty = format!("{q}");
/// let _filtered = LogicalPlan::scan("t1").filter(Predicate::ColGt(0, 3)).distinct();
/// ```
#[derive(Clone, Debug)]
pub struct LogicalPlan {
    /// Root node.
    pub root: Logical,
}

impl LogicalPlan {
    /// Scan a named base table.
    pub fn scan(table: impl Into<String>) -> LogicalPlan {
        LogicalPlan {
            root: Logical::Scan {
                table: table.into(),
            },
        }
    }

    /// Keep rows satisfying `pred`.
    pub fn filter(self, pred: Predicate) -> LogicalPlan {
        LogicalPlan {
            root: Logical::Filter {
                input: Box::new(self.root),
                pred,
            },
        }
    }

    /// Emit the given columns, in order.
    pub fn project(self, cols: Vec<usize>) -> LogicalPlan {
        LogicalPlan {
            root: Logical::Project {
                input: Box::new(self.root),
                cols,
            },
        }
    }

    /// Join with `right` on the leading `join_len` columns.
    pub fn join(self, right: LogicalPlan, join_len: usize, join_type: JoinType) -> LogicalPlan {
        LogicalPlan {
            root: Logical::Join {
                left: Box::new(self.root),
                right: Box::new(right.root),
                join_len,
                join_type,
            },
        }
    }

    /// Group on the leading `group_len` columns, computing `aggs`.
    pub fn group_by(self, group_len: usize, aggs: Vec<Aggregate>) -> LogicalPlan {
        LogicalPlan {
            root: Logical::GroupBy {
                input: Box::new(self.root),
                group_len,
                aggs,
            },
        }
    }

    /// Remove duplicate rows.
    pub fn distinct(self) -> LogicalPlan {
        LogicalPlan {
            root: Logical::Distinct {
                input: Box::new(self.root),
            },
        }
    }

    /// Set operation with `right`.
    pub fn set_op(self, right: LogicalPlan, op: SetOp) -> LogicalPlan {
        LogicalPlan {
            root: Logical::SetOperation {
                left: Box::new(self.root),
                right: Box::new(right.root),
                op,
            },
        }
    }

    /// Demand the output sorted ascending on the leading `key_len`
    /// columns (shorthand for [`LogicalPlan::sort_by`] with an
    /// all-ascending spec).
    pub fn sort(self, key_len: usize) -> LogicalPlan {
        self.sort_by(SortSpec::asc(key_len))
    }

    /// Demand the output ordered under an explicit [`SortSpec`] — mixed
    /// ascending/descending directions, optional normalized-key
    /// encoding.
    pub fn sort_by(self, spec: SortSpec) -> LogicalPlan {
        LogicalPlan {
            root: Logical::Sort {
                input: Box::new(self.root),
                spec,
            },
        }
    }

    /// First `k` rows under the leading-`key_len` ordering.
    pub fn top_k(self, key_len: usize, k: usize) -> LogicalPlan {
        LogicalPlan {
            root: Logical::TopK {
                input: Box::new(self.root),
                key_len,
                k,
            },
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Self::fmt_node(&self.root, f, 0)
    }
}

impl LogicalPlan {
    fn fmt_node(node: &Logical, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match node {
            Logical::Scan { table } => writeln!(f, "{pad}Scan {table}"),
            Logical::Filter { input, pred } => {
                writeln!(f, "{pad}Filter [{pred}]")?;
                Self::fmt_node(input, f, depth + 1)
            }
            Logical::Project { input, cols } => {
                writeln!(f, "{pad}Project {cols:?}")?;
                Self::fmt_node(input, f, depth + 1)
            }
            Logical::Join {
                left,
                right,
                join_len,
                join_type,
            } => {
                writeln!(f, "{pad}Join {join_type:?} on first {join_len} col(s)")?;
                Self::fmt_node(left, f, depth + 1)?;
                Self::fmt_node(right, f, depth + 1)
            }
            Logical::GroupBy {
                input,
                group_len,
                aggs,
            } => {
                writeln!(f, "{pad}GroupBy first {group_len} col(s), aggs {aggs:?}")?;
                Self::fmt_node(input, f, depth + 1)
            }
            Logical::Distinct { input } => {
                writeln!(f, "{pad}Distinct")?;
                Self::fmt_node(input, f, depth + 1)
            }
            Logical::SetOperation { left, right, op } => {
                writeln!(f, "{pad}SetOp {op:?}")?;
                Self::fmt_node(left, f, depth + 1)?;
                Self::fmt_node(right, f, depth + 1)
            }
            Logical::Sort { input, spec } => {
                writeln!(f, "{pad}Sort {spec}")?;
                Self::fmt_node(input, f, depth + 1)
            }
            Logical::TopK { input, key_len, k } => {
                writeln!(f, "{pad}TopK {k} under first {key_len} col(s)")?;
                Self::fmt_node(input, f, depth + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_eval_and_combinators() {
        let r = Row::new(vec![5, 10]);
        assert!(Predicate::ColEq(0, 5).eval(&r));
        assert!(Predicate::ColNe(1, 5).eval(&r));
        assert!(Predicate::ColLt(0, 6).eval(&r));
        assert!(Predicate::ColLe(0, 5).eval(&r));
        assert!(Predicate::ColGt(1, 9).eval(&r));
        assert!(Predicate::ColGe(1, 10).eval(&r));
        assert!(Predicate::ColEq(0, 5).and(Predicate::ColGt(1, 9)).eval(&r));
        assert!(Predicate::ColEq(0, 99).or(Predicate::ColGt(1, 9)).eval(&r));
        assert!(!Predicate::ColEq(0, 99).and(Predicate::ColGt(1, 9)).eval(&r));
    }

    #[test]
    fn selectivity_is_in_unit_interval() {
        let p = Predicate::ColEq(0, 1)
            .and(Predicate::ColGt(1, 2))
            .or(Predicate::ColNe(2, 3));
        let s = p.selectivity();
        assert!(s > 0.0 && s <= 1.0, "{s}");
    }

    #[test]
    fn builder_builds_the_expected_shape() {
        let q = LogicalPlan::scan("t1")
            .filter(Predicate::ColGt(0, 2))
            .join(LogicalPlan::scan("t2"), 1, JoinType::Inner)
            .group_by(1, vec![Aggregate::Count])
            .sort(1);
        let rendered = format!("{q}");
        for needle in ["Sort", "GroupBy", "Join", "Filter", "Scan t1", "Scan t2"] {
            assert!(
                rendered.contains(needle),
                "missing {needle} in:\n{rendered}"
            );
        }
    }
}
