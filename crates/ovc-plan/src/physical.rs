//! Physical plans: chosen operators, inferred properties, estimated cost.
//!
//! Every node records the [`PhysicalProps`] the planner inferred for its
//! output.  Since the ordering/partitioning API redesign those properties
//! are first-class values, not counts:
//!
//! * **order** — a full [`SortSpec`] (per-column directions, optional
//!   normalized-key encoding) plus the `coded` flag, the machinery behind
//!   the paper's "interesting orderings" argument: properties flow
//!   bottom-up through order-preserving operators (by the theorems of
//!   `ovc_core::theorem`), and wherever a required ordering is already
//!   satisfied by a coded stream the planner records a
//!   [`PhysOp::TrustSorted`] marker instead of a sort.  Those markers are
//!   the *elided sorts*; tests audit them with
//!   [`ovc_core::derive::assert_codes_exact_spec`] on the very streams
//!   they trusted.
//! * **partitioning** — a [`Partitioning`] value describing how the
//!   output is laid out across streams.  Explicit [`PhysOp::Exchange`]
//!   nodes move data between layouts (Section 4.10's order-preserving
//!   shuffles, lowered onto the threaded exchange of
//!   `ovc_exec::parallel`), which is how a merge join runs
//!   partition-parallel over hash-co-partitioned inputs.

use std::fmt;

use ovc_core::SortSpec;

use crate::cost::Cost;
use crate::logical::{Aggregate, JoinType, Predicate, SetOp};

/// How a plan node's output is laid out across streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Partitioning {
    /// No guarantee / don't care — the wildcard on the *required* side
    /// of property matching (any layout satisfies it).
    Any,
    /// One stream (the default for every serial operator).
    Single,
    /// `parts` streams, rows routed by a hash of the named columns; rows
    /// agreeing on those columns share a partition — the co-location
    /// guarantee partitioned joins and aggregations build on.
    Hash {
        /// Columns hashed together to pick a partition.
        cols: Vec<usize>,
        /// Number of partitions (= the degree of parallelism).
        parts: usize,
    },
}

impl Partitioning {
    /// Does this layout satisfy `required`?  `Any` as a requirement is
    /// the wildcard; everything else matches exactly.
    pub fn satisfies(&self, required: &Partitioning) -> bool {
        matches!(required, Partitioning::Any) || self == required
    }

    /// Number of parallel streams in this layout.
    pub fn parts(&self) -> usize {
        match self {
            Partitioning::Hash { parts, .. } => *parts,
            _ => 1,
        }
    }
}

impl fmt::Display for Partitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partitioning::Any => f.write_str("any"),
            Partitioning::Single => f.write_str("single"),
            Partitioning::Hash { cols, parts } => {
                f.write_str("hash(")?;
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "c{c}")?;
                }
                write!(f, ")x{parts}")
            }
        }
    }
}

/// Inferred output properties of a physical plan node.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalProps {
    /// Columns per output row.
    pub width: usize,
    /// The ordering contract the output rows follow (empty = none).
    pub order: SortSpec,
    /// Does the output carry exact offset-value codes at the full arity
    /// of `order`?  (Every ordered operator in this repository produces
    /// them, but the flag keeps the property explicit and auditable.)
    pub coded: bool,
    /// How the output is laid out across streams.  `Single` for every
    /// serial operator; `Hash` between a splitting [`PhysOp::Exchange`]
    /// and the gathering one.
    pub partitioning: Partitioning,
    /// Estimated output row count.
    pub rows: f64,
    /// Estimated distinct full rows in the output.
    pub distinct_rows: f64,
    /// Highest degree of parallelism used anywhere in the subtree that
    /// produces this output (1 = fully serial).  Output rows and codes
    /// are dop-invariant (parallel and serial plans answer identically,
    /// byte for byte); counters follow the chosen lowering.  This
    /// property carries the *wall-clock* side of the plan, while `Cost`
    /// carries the counted side.
    pub dop: usize,
}

impl PhysicalProps {
    /// Leading sort-key arity of the output order (0 = unordered).
    /// Compatibility accessor for the pre-`SortSpec` prefix-count view.
    pub fn ordered_key(&self) -> usize {
        self.order.len()
    }

    /// Does this output satisfy an ordering requirement — the required
    /// spec a `(column, direction)`-exact prefix of the carried order,
    /// with codes available?
    pub fn satisfies_ordering(&self, required: &SortSpec) -> bool {
        self.coded && self.order.satisfies(required)
    }
}

/// One physical operator, with children embedded.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub enum PhysOp {
    /// Scan of a table stored sorted: replays codes derived at
    /// registration (Section 4.11 — scans are a source of codes).
    ScanCoded {
        /// Catalog table name.
        table: String,
    },
    /// Scan of an unsorted table: raw rows, no order, no codes.
    ScanRows {
        /// Catalog table name.
        table: String,
    },
    /// External merge sort with offset-value coding (`ovc-sort`),
    /// direction-aware: the spec may mix ascending and descending
    /// columns and request normalized-key run generation.
    SortOvc {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Ordering (and code arity) of the output.
        spec: SortSpec,
        /// Memory budget in rows (stamped from the planner config).
        memory_rows: usize,
        /// Merge fan-in.
        fan_in: usize,
        /// Run-generation worker threads: 1 = the serial external sort,
        /// more lowers onto `ovc_sort::parallel::parallel_sort`
        /// (ascending-prefix specs only).
        dop: usize,
    },
    /// **Elided sort**: the input already carries the required ordering
    /// and exact codes, so no work happens here.  The node stays in the
    /// plan as an auditable record of what the planner trusted.
    TrustSorted {
        /// Input plan (already ordered and coded).
        input: Box<PhysicalPlan>,
        /// The ordering requirement that was satisfied without sorting.
        spec: SortSpec,
    },
    /// **Reused opposite ordering**: the input is sorted and coded on
    /// exactly the reversed spec, so the requirement is met by
    /// materializing, reversing, and re-priming codes in one linear pass
    /// — `N × K` column accesses, no `log N` sort factor, no spill.
    Reverse {
        /// Input plan (ordered and coded on `spec.reversed()`).
        input: Box<PhysicalPlan>,
        /// The ordering the reversed output satisfies.
        spec: SortSpec,
    },
    /// External sort with duplicate removal folded into run generation
    /// and merging (Figure 5's sort-side blocking operator).
    InSortDistinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Ordering of the output — the full row width under set
        /// semantics (ascending in every plan this planner emits).
        spec: SortSpec,
        /// Memory budget in rows.
        memory_rows: usize,
        /// Merge fan-in.
        fan_in: usize,
        /// Run-generation worker threads (1 = serial; > 1 lowers onto
        /// `ovc_sort::parallel::parallel_sort_distinct`).
        dop: usize,
    },
    /// Streaming duplicate removal by code inspection (input must be
    /// sorted and coded on the full row).
    DedupCodes {
        /// Input plan.
        input: Box<PhysicalPlan>,
    },
    /// Hash-based duplicate removal (`ovc-baseline`): arbitrary output
    /// order, spills every row when over budget.
    HashDistinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Memory budget in rows.
        memory_rows: usize,
    },
    /// Streaming predicate filter (filter theorem for output codes).
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Row predicate.
        pred: Predicate,
    },
    /// Column projection; keeps codes for the surviving key prefix.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Column indices to emit.
        cols: Vec<usize>,
        /// Leading sort-key columns that survive in place.
        surviving_key: usize,
    },
    /// In-stream grouping/aggregation over a sorted coded input.
    GroupOvc {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Grouping-key length.
        group_len: usize,
        /// Aggregates appended after the group key.
        aggs: Vec<Aggregate>,
    },
    /// Merge join consuming and producing codes (Section 4.7).  When its
    /// inputs are hash-co-partitioned on the join key (explicit
    /// [`PhysOp::Exchange`] children), the join runs one worker per
    /// partition pair (`ovc_exec::parallel::merge_join_partitions`).
    MergeJoinOvc {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join-key length.
        join_len: usize,
        /// Join type.
        join_type: JoinType,
    },
    /// Spilling Grace hash join (`ovc-baseline`), inner joins only.
    GraceHashJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join-key length.
        join_len: usize,
        /// Memory budget in rows.
        memory_rows: usize,
    },
    /// Merge-based set operation over sorted coded inputs.
    SetOpMerge {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Which set operation.
        op: SetOp,
    },
    /// First `k` rows of a sorted coded input.
    TopK {
        /// Input plan (ordered).
        input: Box<PhysicalPlan>,
        /// Rows to keep.
        k: usize,
    },
    /// Order-preserving exchange (Section 4.10): moves the input into
    /// the target [`Partitioning`].  `Single → Hash` lowers onto the
    /// threaded splitting shuffle (`split_threaded`, one filter-theorem
    /// accumulator per partition), `Hash → Single` onto the threaded
    /// merging shuffle (`merge_threaded`, a tree-of-losers over the
    /// partition streams).  Codes stay exact across both.
    Exchange {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Target layout.
        to: Partitioning,
        /// Rows per [`ovc_core::FlatRows`] batch crossing the exchange
        /// channels when the plan runs on the batched executor (`None` =
        /// row-at-a-time).  Stamped by
        /// [`crate::planner::PlannerConfig::with_batch_size`] and shown
        /// by `EXPLAIN`.
        batch: Option<usize>,
    },
    /// Hash-to-hash repartitioning: N splitters × P mergers, all
    /// threaded (`repartition_threaded`) — used when the input is
    /// already partitioned but on the wrong columns or width.
    Repartition {
        /// Input plan (hash-partitioned).
        input: Box<PhysicalPlan>,
        /// Columns hashed to pick the new partition.
        cols: Vec<usize>,
        /// New partition count.
        parts: usize,
    },
}

/// A physical plan node: operator, inferred properties, cumulative cost.
#[derive(Clone, Debug)]
pub struct PhysicalPlan {
    /// The operator and its children.
    pub op: PhysOp,
    /// Inferred output properties.
    pub props: PhysicalProps,
    /// Estimated cumulative cost of the whole subtree.
    pub cost: Cost,
}

impl PhysicalPlan {
    /// Operator name for display and tests.
    pub fn op_name(&self) -> &'static str {
        match &self.op {
            PhysOp::ScanCoded { .. } => "ScanCoded",
            PhysOp::ScanRows { .. } => "ScanRows",
            PhysOp::SortOvc { .. } => "SortOvc",
            PhysOp::TrustSorted { .. } => "TrustSorted",
            PhysOp::Reverse { .. } => "Reverse",
            PhysOp::InSortDistinct { .. } => "InSortDistinct",
            PhysOp::DedupCodes { .. } => "DedupCodes",
            PhysOp::HashDistinct { .. } => "HashDistinct",
            PhysOp::Filter { .. } => "Filter",
            PhysOp::Project { .. } => "Project",
            PhysOp::GroupOvc { .. } => "GroupOvc",
            PhysOp::MergeJoinOvc { .. } => "MergeJoinOvc",
            PhysOp::GraceHashJoin { .. } => "GraceHashJoin",
            PhysOp::SetOpMerge { .. } => "SetOpMerge",
            PhysOp::TopK { .. } => "TopK",
            PhysOp::Exchange { .. } => "Exchange",
            PhysOp::Repartition { .. } => "Repartition",
        }
    }

    /// Children of this node, in order.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match &self.op {
            PhysOp::ScanCoded { .. } | PhysOp::ScanRows { .. } => vec![],
            PhysOp::SortOvc { input, .. }
            | PhysOp::TrustSorted { input, .. }
            | PhysOp::Reverse { input, .. }
            | PhysOp::InSortDistinct { input, .. }
            | PhysOp::DedupCodes { input }
            | PhysOp::HashDistinct { input, .. }
            | PhysOp::Filter { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::GroupOvc { input, .. }
            | PhysOp::TopK { input, .. }
            | PhysOp::Exchange { input, .. }
            | PhysOp::Repartition { input, .. } => vec![input],
            PhysOp::MergeJoinOvc { left, right, .. }
            | PhysOp::GraceHashJoin { left, right, .. }
            | PhysOp::SetOpMerge { left, right, .. } => vec![left, right],
        }
    }

    /// All nodes of the subtree, preorder.
    pub fn nodes(&self) -> Vec<&PhysicalPlan> {
        let mut out = vec![self];
        for c in self.children() {
            out.extend(c.nodes());
        }
        out
    }

    /// Count operators by name (test/inspection convenience).
    pub fn count_op(&self, name: &str) -> usize {
        self.nodes().iter().filter(|n| n.op_name() == name).count()
    }

    /// The elided-sort markers in this plan: every place the planner
    /// trusted an existing ordering instead of sorting.
    pub fn elided_sorts(&self) -> Vec<&PhysicalPlan> {
        self.nodes()
            .into_iter()
            .filter(|n| matches!(n.op, PhysOp::TrustSorted { .. }))
            .collect()
    }

    /// The explicit exchange operators in this plan (splits, gathers,
    /// and repartitions).
    pub fn exchanges(&self) -> Vec<&PhysicalPlan> {
        self.nodes()
            .into_iter()
            .filter(|n| matches!(n.op, PhysOp::Exchange { .. } | PhysOp::Repartition { .. }))
            .collect()
    }

    /// Does the plan contain any sort-based blocking/streaming-order
    /// operator (the OVC side of the paper's comparison)?
    pub fn uses_sort_based_ops(&self) -> bool {
        self.nodes().iter().any(|n| {
            matches!(
                n.op,
                PhysOp::SortOvc { .. }
                    | PhysOp::InSortDistinct { .. }
                    | PhysOp::MergeJoinOvc { .. }
                    | PhysOp::SetOpMerge { .. }
                    | PhysOp::DedupCodes { .. }
            )
        })
    }

    /// Does the plan contain any hash-based operator (the baseline side)?
    pub fn uses_hash_based_ops(&self) -> bool {
        self.nodes().iter().any(|n| {
            matches!(
                n.op,
                PhysOp::HashDistinct { .. } | PhysOp::GraceHashJoin { .. }
            )
        })
    }

    /// Render the plan tree with properties and costs (`EXPLAIN`).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    /// Operator detail string as rendered by [`PhysicalPlan::explain`]
    /// (key, predicate, partitioning target, …) — shared with the
    /// profiler so `EXPLAIN` and `EXPLAIN ANALYZE` label nodes
    /// identically.
    pub fn op_detail(&self) -> String {
        match &self.op {
            PhysOp::ScanCoded { table } | PhysOp::ScanRows { table } => format!(" {table}"),
            PhysOp::SortOvc { spec, dop, .. } | PhysOp::InSortDistinct { spec, dop, .. } => {
                if *dop > 1 {
                    format!(" key={spec} dop={dop}")
                } else {
                    format!(" key={spec}")
                }
            }
            PhysOp::TrustSorted { spec, .. } => format!(" key={spec} (sort elided)"),
            PhysOp::Reverse { spec, .. } => format!(" key={spec} (reused opposite order)"),
            PhysOp::Filter { pred, .. } => format!(" [{pred}]"),
            PhysOp::Project { cols, .. } => format!(" {cols:?}"),
            PhysOp::GroupOvc { group_len, .. } => format!(" group={group_len}"),
            PhysOp::MergeJoinOvc {
                join_len,
                join_type,
                ..
            } => {
                format!(" {join_type:?} on={join_len}")
            }
            PhysOp::GraceHashJoin { join_len, .. } => format!(" Inner on={join_len}"),
            PhysOp::SetOpMerge { op, .. } => format!(" {op:?}"),
            PhysOp::TopK { k, .. } => format!(" k={k}"),
            PhysOp::Exchange { to, batch, .. } => match batch {
                Some(b) => format!(" -> {to} batch={b}"),
                None => format!(" -> {to}"),
            },
            PhysOp::Repartition { cols, parts, .. } => {
                let to = Partitioning::Hash {
                    cols: cols.clone(),
                    parts: *parts,
                };
                format!(" -> {to}")
            }
            _ => String::new(),
        }
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let detail = self.op_detail();
        let dop = if self.props.dop > 1 {
            format!(", dop={}", self.props.dop)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{pad}{}{detail}  [rows~{:.0}, order={}, coded={}, part={}{dop}, spill~{:.0}]",
            self.op_name(),
            self.props.rows,
            self.props.order,
            self.props.coded,
            self.props.partitioning,
            self.cost.spill_rows,
        );
        for c in self.children() {
            c.explain_into(out, depth + 1);
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str) -> PhysicalPlan {
        PhysicalPlan {
            op: PhysOp::ScanCoded { table: name.into() },
            props: PhysicalProps {
                width: 1,
                order: SortSpec::asc(1),
                coded: true,
                partitioning: Partitioning::Single,
                rows: 10.0,
                distinct_rows: 10.0,
                dop: 1,
            },
            cost: Cost::zero(),
        }
    }

    #[test]
    fn tree_walks_and_counters() {
        let l = leaf("a");
        let r = leaf("b");
        let join = PhysicalPlan {
            props: l.props.clone(),
            cost: Cost::zero(),
            op: PhysOp::MergeJoinOvc {
                left: Box::new(PhysicalPlan {
                    props: l.props.clone(),
                    cost: Cost::zero(),
                    op: PhysOp::TrustSorted {
                        input: Box::new(l),
                        spec: SortSpec::asc(1),
                    },
                }),
                right: Box::new(r),
                join_len: 1,
                join_type: JoinType::Inner,
            },
        };
        assert_eq!(join.nodes().len(), 4);
        assert_eq!(join.elided_sorts().len(), 1);
        assert_eq!(join.count_op("ScanCoded"), 2);
        assert!(join.uses_sort_based_ops());
        assert!(!join.uses_hash_based_ops());
        assert!(join.exchanges().is_empty());
        let ex = join.explain();
        assert!(ex.contains("sort elided"), "{ex}");
        assert!(ex.contains("MergeJoinOvc"), "{ex}");
        assert!(ex.contains("order=[c0 asc]"), "{ex}");
        assert!(ex.contains("part=single"), "{ex}");
    }

    #[test]
    fn props_satisfaction() {
        use ovc_core::Direction;
        let p = PhysicalProps {
            width: 3,
            order: SortSpec::with_dirs(&[Direction::Asc, Direction::Desc]),
            coded: true,
            partitioning: Partitioning::Single,
            rows: 1.0,
            distinct_rows: 1.0,
            dop: 1,
        };
        assert!(p.satisfies_ordering(&SortSpec::asc(1)));
        assert!(p.satisfies_ordering(&p.order));
        assert!(
            !p.satisfies_ordering(&SortSpec::asc(2)),
            "direction matters"
        );
        assert!(!p.satisfies_ordering(&SortSpec::asc(3)));
        assert_eq!(p.ordered_key(), 2);
        let un = PhysicalProps { coded: false, ..p };
        assert!(!un.satisfies_ordering(&SortSpec::asc(1)));
    }

    #[test]
    fn partitioning_satisfaction_and_display() {
        let hash = Partitioning::Hash {
            cols: vec![0, 1],
            parts: 4,
        };
        assert!(hash.satisfies(&Partitioning::Any));
        assert!(hash.satisfies(&hash.clone()));
        assert!(!hash.satisfies(&Partitioning::Single));
        assert!(Partitioning::Single.satisfies(&Partitioning::Any));
        assert_eq!(hash.parts(), 4);
        assert_eq!(Partitioning::Single.parts(), 1);
        assert_eq!(hash.to_string(), "hash(c0,c1)x4");
        assert_eq!(Partitioning::Single.to_string(), "single");
        assert_eq!(Partitioning::Any.to_string(), "any");
    }

    #[test]
    fn exchange_nodes_render_their_target() {
        let base = leaf("t");
        let split = PhysicalPlan {
            props: PhysicalProps {
                partitioning: Partitioning::Hash {
                    cols: vec![0],
                    parts: 4,
                },
                dop: 4,
                ..base.props.clone()
            },
            cost: Cost::zero(),
            op: PhysOp::Exchange {
                input: Box::new(base),
                to: Partitioning::Hash {
                    cols: vec![0],
                    parts: 4,
                },
                batch: None,
            },
        };
        let ex = split.explain();
        assert!(ex.contains("Exchange -> hash(c0)x4"), "{ex}");
        assert!(ex.contains("part=hash(c0)x4"), "{ex}");
        assert!(ex.contains("dop=4"), "{ex}");
        assert_eq!(split.exchanges().len(), 1);
    }
}
