//! Physical plans: chosen operators, inferred properties, estimated cost.
//!
//! Every node records the [`PhysicalProps`] the planner inferred for its
//! output — sort order *and* offset-value-code availability — which is
//! the machinery behind the paper's "interesting orderings" argument:
//! properties flow bottom-up through order-preserving operators (by the
//! theorems of `ovc_core::theorem`), and wherever a required ordering is
//! already satisfied by a coded stream the planner records a
//! [`PhysOp::TrustSorted`] marker instead of a sort.  Those markers are
//! the *elided sorts*; tests audit them with
//! [`ovc_core::derive::assert_codes_exact`] on the very streams they
//! trusted.

use std::fmt;

use crate::cost::Cost;
use crate::logical::{Aggregate, JoinType, Predicate, SetOp};

/// Inferred output properties of a physical plan node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhysicalProps {
    /// Columns per output row.
    pub width: usize,
    /// Leading columns the output is guaranteed sorted on (0 = none).
    pub ordered_key: usize,
    /// Does the output carry exact offset-value codes at `ordered_key`
    /// arity?  (Every ordered operator in this repository produces them,
    /// but the flag keeps the property explicit and auditable.)
    pub coded: bool,
    /// Estimated output row count.
    pub rows: f64,
    /// Estimated distinct full rows in the output.
    pub distinct_rows: f64,
    /// Highest degree of parallelism used anywhere in the subtree that
    /// produces this output (1 = fully serial).  Output rows and codes
    /// are dop-invariant (parallel and serial plans answer identically,
    /// byte for byte); counters follow the chosen lowering — the
    /// parallel sorts keep runs resident and spill nothing, which the
    /// parallel cost functions reflect.  This property carries the
    /// *wall-clock* side of the plan, while `Cost` carries the counted
    /// side.
    pub dop: usize,
}

impl PhysicalProps {
    /// Does this output satisfy an ordering requirement on the leading
    /// `key_len` columns with codes available?
    pub fn satisfies_ordering(&self, key_len: usize) -> bool {
        self.coded && self.ordered_key >= key_len
    }
}

/// One physical operator, with children embedded.
#[derive(Clone, Debug)]
pub enum PhysOp {
    /// Scan of a table stored sorted: replays codes derived at
    /// registration (Section 4.11 — scans are a source of codes).
    ScanCoded {
        /// Catalog table name.
        table: String,
    },
    /// Scan of an unsorted table: raw rows, no order, no codes.
    ScanRows {
        /// Catalog table name.
        table: String,
    },
    /// External merge sort with offset-value coding (`ovc-sort`).
    SortOvc {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort-key length (code arity) of the output.
        key_len: usize,
        /// Memory budget in rows (stamped from the planner config).
        memory_rows: usize,
        /// Merge fan-in.
        fan_in: usize,
        /// Run-generation worker threads (1 = the serial external sort;
        /// > 1 lowers onto `ovc_sort::parallel::parallel_sort`).
        dop: usize,
    },
    /// **Elided sort**: the input already carries the required ordering
    /// and exact codes, so no work happens here.  The node stays in the
    /// plan as an auditable record of what the planner trusted.
    TrustSorted {
        /// Input plan (already ordered and coded).
        input: Box<PhysicalPlan>,
        /// The ordering requirement that was satisfied without sorting.
        key_len: usize,
    },
    /// External sort with duplicate removal folded into run generation
    /// and merging (Figure 5's sort-side blocking operator).
    InSortDistinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort-key length — the full row width under set semantics.
        key_len: usize,
        /// Memory budget in rows.
        memory_rows: usize,
        /// Merge fan-in.
        fan_in: usize,
        /// Run-generation worker threads (1 = serial; > 1 lowers onto
        /// `ovc_sort::parallel::parallel_sort_distinct`).
        dop: usize,
    },
    /// Streaming duplicate removal by code inspection (input must be
    /// sorted and coded on the full row).
    DedupCodes {
        /// Input plan.
        input: Box<PhysicalPlan>,
    },
    /// Hash-based duplicate removal (`ovc-baseline`): arbitrary output
    /// order, spills every row when over budget.
    HashDistinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Memory budget in rows.
        memory_rows: usize,
    },
    /// Streaming predicate filter (filter theorem for output codes).
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Row predicate.
        pred: Predicate,
    },
    /// Column projection; keeps codes for the surviving key prefix.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Column indices to emit.
        cols: Vec<usize>,
        /// Leading sort-key columns that survive in place.
        surviving_key: usize,
    },
    /// In-stream grouping/aggregation over a sorted coded input.
    GroupOvc {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Grouping-key length.
        group_len: usize,
        /// Aggregates appended after the group key.
        aggs: Vec<Aggregate>,
    },
    /// Merge join consuming and producing codes (Section 4.7).
    MergeJoinOvc {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join-key length.
        join_len: usize,
        /// Join type.
        join_type: JoinType,
    },
    /// Spilling Grace hash join (`ovc-baseline`), inner joins only.
    GraceHashJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join-key length.
        join_len: usize,
        /// Memory budget in rows.
        memory_rows: usize,
    },
    /// Merge-based set operation over sorted coded inputs.
    SetOpMerge {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Which set operation.
        op: SetOp,
    },
    /// First `k` rows of a sorted coded input.
    TopK {
        /// Input plan (ordered).
        input: Box<PhysicalPlan>,
        /// Rows to keep.
        k: usize,
    },
}

/// A physical plan node: operator, inferred properties, cumulative cost.
#[derive(Clone, Debug)]
pub struct PhysicalPlan {
    /// The operator and its children.
    pub op: PhysOp,
    /// Inferred output properties.
    pub props: PhysicalProps,
    /// Estimated cumulative cost of the whole subtree.
    pub cost: Cost,
}

impl PhysicalPlan {
    /// Operator name for display and tests.
    pub fn op_name(&self) -> &'static str {
        match &self.op {
            PhysOp::ScanCoded { .. } => "ScanCoded",
            PhysOp::ScanRows { .. } => "ScanRows",
            PhysOp::SortOvc { .. } => "SortOvc",
            PhysOp::TrustSorted { .. } => "TrustSorted",
            PhysOp::InSortDistinct { .. } => "InSortDistinct",
            PhysOp::DedupCodes { .. } => "DedupCodes",
            PhysOp::HashDistinct { .. } => "HashDistinct",
            PhysOp::Filter { .. } => "Filter",
            PhysOp::Project { .. } => "Project",
            PhysOp::GroupOvc { .. } => "GroupOvc",
            PhysOp::MergeJoinOvc { .. } => "MergeJoinOvc",
            PhysOp::GraceHashJoin { .. } => "GraceHashJoin",
            PhysOp::SetOpMerge { .. } => "SetOpMerge",
            PhysOp::TopK { .. } => "TopK",
        }
    }

    /// Children of this node, in order.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match &self.op {
            PhysOp::ScanCoded { .. } | PhysOp::ScanRows { .. } => vec![],
            PhysOp::SortOvc { input, .. }
            | PhysOp::TrustSorted { input, .. }
            | PhysOp::InSortDistinct { input, .. }
            | PhysOp::DedupCodes { input }
            | PhysOp::HashDistinct { input, .. }
            | PhysOp::Filter { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::GroupOvc { input, .. }
            | PhysOp::TopK { input, .. } => vec![input],
            PhysOp::MergeJoinOvc { left, right, .. }
            | PhysOp::GraceHashJoin { left, right, .. }
            | PhysOp::SetOpMerge { left, right, .. } => vec![left, right],
        }
    }

    /// All nodes of the subtree, preorder.
    pub fn nodes(&self) -> Vec<&PhysicalPlan> {
        let mut out = vec![self];
        for c in self.children() {
            out.extend(c.nodes());
        }
        out
    }

    /// Count operators by name (test/inspection convenience).
    pub fn count_op(&self, name: &str) -> usize {
        self.nodes().iter().filter(|n| n.op_name() == name).count()
    }

    /// The elided-sort markers in this plan: every place the planner
    /// trusted an existing ordering instead of sorting.
    pub fn elided_sorts(&self) -> Vec<&PhysicalPlan> {
        self.nodes()
            .into_iter()
            .filter(|n| matches!(n.op, PhysOp::TrustSorted { .. }))
            .collect()
    }

    /// Does the plan contain any sort-based blocking/streaming-order
    /// operator (the OVC side of the paper's comparison)?
    pub fn uses_sort_based_ops(&self) -> bool {
        self.nodes().iter().any(|n| {
            matches!(
                n.op,
                PhysOp::SortOvc { .. }
                    | PhysOp::InSortDistinct { .. }
                    | PhysOp::MergeJoinOvc { .. }
                    | PhysOp::SetOpMerge { .. }
                    | PhysOp::DedupCodes { .. }
            )
        })
    }

    /// Does the plan contain any hash-based operator (the baseline side)?
    pub fn uses_hash_based_ops(&self) -> bool {
        self.nodes().iter().any(|n| {
            matches!(
                n.op,
                PhysOp::HashDistinct { .. } | PhysOp::GraceHashJoin { .. }
            )
        })
    }

    /// Render the plan tree with properties and costs (`EXPLAIN`).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let detail = match &self.op {
            PhysOp::ScanCoded { table } | PhysOp::ScanRows { table } => format!(" {table}"),
            PhysOp::SortOvc { key_len, dop, .. } | PhysOp::InSortDistinct { key_len, dop, .. } => {
                if *dop > 1 {
                    format!(" key={key_len} dop={dop}")
                } else {
                    format!(" key={key_len}")
                }
            }
            PhysOp::TrustSorted { key_len, .. } => format!(" key={key_len} (sort elided)"),
            PhysOp::Filter { pred, .. } => format!(" [{pred}]"),
            PhysOp::Project { cols, .. } => format!(" {cols:?}"),
            PhysOp::GroupOvc { group_len, .. } => format!(" group={group_len}"),
            PhysOp::MergeJoinOvc {
                join_len,
                join_type,
                ..
            } => {
                format!(" {join_type:?} on={join_len}")
            }
            PhysOp::GraceHashJoin { join_len, .. } => format!(" Inner on={join_len}"),
            PhysOp::SetOpMerge { op, .. } => format!(" {op:?}"),
            PhysOp::TopK { k, .. } => format!(" k={k}"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{pad}{}{detail}  [rows~{:.0}, ordered={}, coded={}, spill~{:.0}]",
            self.op_name(),
            self.props.rows,
            self.props.ordered_key,
            self.props.coded,
            self.cost.spill_rows,
        );
        for c in self.children() {
            c.explain_into(out, depth + 1);
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str) -> PhysicalPlan {
        PhysicalPlan {
            op: PhysOp::ScanCoded { table: name.into() },
            props: PhysicalProps {
                width: 1,
                ordered_key: 1,
                coded: true,
                rows: 10.0,
                distinct_rows: 10.0,
                dop: 1,
            },
            cost: Cost::zero(),
        }
    }

    #[test]
    fn tree_walks_and_counters() {
        let l = leaf("a");
        let r = leaf("b");
        let join = PhysicalPlan {
            props: l.props,
            cost: Cost::zero(),
            op: PhysOp::MergeJoinOvc {
                left: Box::new(PhysicalPlan {
                    props: l.props,
                    cost: Cost::zero(),
                    op: PhysOp::TrustSorted {
                        input: Box::new(l),
                        key_len: 1,
                    },
                }),
                right: Box::new(r),
                join_len: 1,
                join_type: JoinType::Inner,
            },
        };
        assert_eq!(join.nodes().len(), 4);
        assert_eq!(join.elided_sorts().len(), 1);
        assert_eq!(join.count_op("ScanCoded"), 2);
        assert!(join.uses_sort_based_ops());
        assert!(!join.uses_hash_based_ops());
        let ex = join.explain();
        assert!(ex.contains("sort elided"), "{ex}");
        assert!(ex.contains("MergeJoinOvc"), "{ex}");
    }

    #[test]
    fn props_satisfaction() {
        let p = PhysicalProps {
            width: 3,
            ordered_key: 2,
            coded: true,
            rows: 1.0,
            distinct_rows: 1.0,
            dop: 1,
        };
        assert!(p.satisfies_ordering(1));
        assert!(p.satisfies_ordering(2));
        assert!(!p.satisfies_ordering(3));
        let un = PhysicalProps { coded: false, ..p };
        assert!(!un.satisfies_ordering(1));
    }
}
