//! # ovc-plan — an order-aware query planner over the OVC operator library
//!
//! The paper's headline claim (Sections 4.7 and 6, Figures 5 and 6) is a
//! *planning* claim: sort-based query plans that exploit interesting
//! orderings **and** offset-value codes beat hash-based plans.  The other
//! crates of this workspace supply both operator families; this crate
//! supplies the component that chooses between them:
//!
//! * [`logical`] — a small logical algebra (`Scan`, `Filter`, `Project`,
//!   `Join`, `GroupBy`, `Distinct`, `SetOperation`, `Sort`, `TopK`) with a
//!   fluent [`logical::LogicalPlan`] builder;
//! * [`catalog`] — named base tables; tables stored sorted derive their
//!   offset-value codes once at registration (Section 4.11: scans are a
//!   source of codes as important as sorting);
//! * [`physical`] — physical plans annotated with inferred
//!   [`physical::PhysicalProps`]: sort order *and* code availability,
//!   propagated through each operator by the `ovc_core::theorem` rules;
//! * [`cost`] — a cost model in the same counter units that
//!   [`ovc_core::Stats`] measures, folded with [`ovc_core::CostWeights`]
//!   so estimates and observations share a scale;
//! * [`planner`] — the chooser: per blocking operator it prices the OVC
//!   sort-based implementation against the hash-based baseline, and it
//!   **elides redundant sorts** (recorded as auditable
//!   [`physical::PhysOp::TrustSorted`] markers) whenever a required
//!   ordering is already carried by a coded stream;
//! * [`exec`] — the executor lowering chosen plans onto
//!   `ovc-exec`/`ovc-sort`/`ovc-baseline` operators, returning a coded
//!   [`ovc_core::OvcStream`] for ordered plans;
//! * [`profile`] — `EXPLAIN ANALYZE`: [`exec::execute_profiled`] meters
//!   every lowered operator into an [`ovc_core::metrics::ProfileNode`]
//!   tree (rows, wall time, comparison deltas, exchange channel gauges)
//!   and [`physical::PhysicalPlan::explain_analyze`] renders estimates
//!   beside measurements;
//! * [`figure5`] — the paper's Figure 5 experiment derived from one
//!   logical query instead of two hand-written pipelines.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use ovc_core::{Row, Stats};
//! use ovc_plan::{Catalog, Table, LogicalPlan, Planner, PlannerConfig, SetOp};
//! use ovc_plan::exec::{execute, ExecOptions};
//!
//! // Figure 5: select B from T1 intersect select B from T2 — but with
//! // the inputs stored sorted, so no sort is needed anywhere.
//! let mut catalog = Catalog::new();
//! catalog.register("t1", Table::sorted(vec![Row::new(vec![1]), Row::new(vec![2])], 1));
//! catalog.register("t2", Table::sorted(vec![Row::new(vec![2]), Row::new(vec![3])], 1));
//!
//! let query = LogicalPlan::scan("t1").set_op(LogicalPlan::scan("t2"), SetOp::Intersect);
//! let plan = Planner::new(&catalog, PlannerConfig::default()).plan(&query).unwrap();
//! assert_eq!(plan.elided_sorts().len(), 2); // both sorts elided
//!
//! let stats = Stats::new_shared();
//! let out = execute(&plan, &catalog, &stats, &ExecOptions::default());
//! let rows: Vec<Row> = out.into_rows();
//! assert_eq!(rows, vec![Row::new(vec![2])]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch_exec;
pub mod catalog;
pub mod cost;
pub mod exec;
pub mod figure5;
pub mod logical;
pub mod physical;
pub mod planner;
pub mod profile;

pub use batch_exec::execute_batched;
pub use catalog::{Catalog, Table};
pub use cost::Cost;
pub use exec::{
    execute, execute_ctx, execute_ctx_profiled, execute_profiled, execute_stream, ExecOptions,
    Output,
};
pub use logical::{Aggregate, JoinType, LogicalPlan, Predicate, SetOp};
pub use physical::{Partitioning, PhysOp, PhysicalPlan, PhysicalProps};
pub use planner::{PlanError, Planner, PlannerConfig, Preference};
pub use profile::{build_profile, render_analyze};

// The property types plans are matched on, re-exported so planner users
// need not depend on `ovc-core` directly.
pub use ovc_core::{Direction, SortSpec};
