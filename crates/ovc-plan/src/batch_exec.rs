//! The batched executor: physical plans lowered onto morsel-style
//! flat-batch pipelines ([`ovc_core::batch::BatchStream`]).
//!
//! [`execute_batched`] is the batch-at-a-time counterpart of
//! [`crate::exec::execute`], selected by [`ExecOptions::batch_size`].
//! Operators hand each other [`FlatRows`] batches instead of boxed rows,
//! and — the point of the exercise — **exchanges forward batches through
//! their channels instead of materializing whole inputs** at the
//! split/merge boundaries (EXPERIMENTS.md §5 measured that sandwich at
//! up to 2.7× the serial runtime; §6 re-measures it batched):
//!
//! * A splitting [`PhysOp::Exchange`] spawns one producer thread that
//!   lowers and drains its child *on that thread*, routing rows with
//!   [`ovc_exec::route_batches`] (one [`OvcAccumulator`] per partition —
//!   exactly `split_threaded`'s code repair) and sending each filled
//!   batch down an **unbounded** per-partition channel.  Unbounded is
//!   deliberate: the split edge's consumers (partitioned join/group/set
//!   workers) start immediately but may drain unevenly; the memory bound
//!   is the input size, which is precisely what the row executor's full
//!   materialization at this same boundary already cost (DESIGN.md §12).
//! * Partitioned [`PhysOp::MergeJoinOvc`] / [`PhysOp::GroupOvc`] /
//!   [`PhysOp::SetOpMerge`] run one worker per partition (pair); each
//!   worker streams batches in from the split edge, applies the ordinary
//!   row kernel between [`BatchRows`] and [`Batcher`], and sends output
//!   batches down a **bounded** channel (capacity
//!   `DEFAULT_CHANNEL_CAPACITY / batch` messages, so the in-flight *row*
//!   budget matches the row executor's).
//! * The gathering [`PhysOp::Exchange`] merges the partition batch
//!   streams on the calling thread with the order-preserving
//!   tree-of-losers, under the partitions' actual ordering contract.
//!
//! Rows, codes, and [`Stats`] totals are byte-identical to the row
//! executor — `tests/batch_pipeline_properties.rs` holds serial-row,
//! batched-serial, and batched-parallel runs to that, code for code.
//! The seam rule makes this cheap: cutting a coded stream into batches
//! needs no code repair at all, so every serial operator is the row
//! kernel with batch adapters at its ports, and only the exchange edges
//! (where partitions *are* lifted out of their stream) repair codes,
//! with the same accumulators the row executor uses.
//!
//! Worker threads account into per-thread [`Stats`] merged through one
//! [`AtomicStats`]; totals land in the caller's `stats` when the plan's
//! thread scope ends.  Under profiling, each worker also attributes its
//! counters to its operator's [`ProfileNode`] directly, so *that node's*
//! figures are exact while ancestors' inclusive figures cover only
//! calling-thread work (same caveat as the row executor's threaded
//! helpers; the plan-wide totals agree either way).
//!
//! [`OvcAccumulator`]: ovc_core::theorem::OvcAccumulator
//! [`DEFAULT_CHANNEL_CAPACITY`]: ovc_exec::DEFAULT_CHANNEL_CAPACITY

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::Scope;
use std::time::{Duration, Instant};

use ovc_core::batch::{assert_batches_exact_spec, BatchRows, Batcher, VecBatchStream};
use ovc_core::ctx::{self, ExecError};
use ovc_core::derive::derive_codes_spec_counted;
use ovc_core::fault;
use ovc_core::metrics::{ChannelGauge, ExchangeGauges, ProfileNode};
use ovc_core::{
    AtomicStats, BatchStream, CodedBatch, FlatRows, OvcRow, OvcStream, Row, SortSpec, Stats,
    StatsSnapshot, Value, VecStream,
};
use ovc_exec::exchange::partition;
use ovc_exec::plans::in_sort_distinct;
use ovc_exec::{
    route_batches, BatchChannelStream, BatchDedup, BatchFilter, BatchFrame, BatchProject,
    BatchTake, GroupAggregate, MergeJoin, SetOperation, DEFAULT_CHANNEL_CAPACITY,
};
use ovc_sort::{external_sort, external_sort_spec, MemoryRunStorage, SortConfig};

use crate::catalog::Catalog;
use crate::exec::{ExecOptions, Output};
use crate::physical::{Partitioning, PhysOp, PhysicalPlan};

/// A partition's batch stream as it crosses threads.
type PartStream = Box<dyn BatchStream + Send>;

/// Run `plan` batch-at-a-time with `options.batch_size` rows per batch
/// (which must be set), accounting into `stats`; with `prof`, fill the
/// profile tree exactly as [`crate::exec::execute_profiled`] does.
///
/// The returned [`Output`] is shaped like the row executor's: ordered
/// roots come back as a coded stream (materialized — the pipeline's
/// threads are joined before returning), hash-side roots as rows,
/// partitioned roots as coded batches.
pub fn execute_batched(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    stats: &Arc<Stats>,
    options: &ExecOptions,
    prof: Option<&Arc<ProfileNode>>,
) -> Output {
    let batch = options
        .batch_size
        .expect("batched executor requires ExecOptions::batch_size");
    let shared = Arc::new(AtomicStats::default());
    let out = std::thread::scope(|scope| {
        let cx = BCx {
            catalog,
            options,
            batch,
            scope,
            shared: Arc::clone(&shared),
        };
        match cx.run(plan, stats, prof, None) {
            BOut::Batches(mut b) => {
                let spec = b.sort_spec();
                let mut rows: Vec<OvcRow> = Vec::new();
                while let Some(fb) = b.next_batch() {
                    rows.extend(fb.to_ovc_rows());
                }
                drop(b);
                Output::Stream(Box::new(VecStream::from_coded_spec(rows, spec)))
            }
            BOut::Rows(rows) => Output::Rows(rows),
            BOut::Parts(parts, _) => {
                // Drain every partition stream to a standalone coded
                // batch.  Concurrent drains keep upstream workers busy;
                // each partition chain is fed by its own thread, so
                // join order cannot deadlock.  Drains run contained and
                // every peer joins before the first error propagates.
                let handles: Vec<_> = parts
                    .into_iter()
                    .map(|s| {
                        scope.spawn(move || {
                            ctx::contain(|| CodedBatch::from_stream_flat(BatchRows::new(s)))
                        })
                    })
                    .collect();
                let (batches, failure) = reap_scoped(handles);
                if let Some(err) = failure {
                    ctx::propagate(err);
                }
                Output::Partitions(batches)
            }
        }
    });
    // Fold every worker thread's counters into the caller's totals.
    stats.absorb(&shared.snapshot());
    out
}

/// What a (sub)plan produced, batched: the analogue of [`Output`] with
/// streams delivered batch-at-a-time and partitions delivered as *live*
/// per-partition batch streams instead of materialized batches.
enum BOut {
    /// Sorted batch stream carrying exact offset-value codes.
    Batches(Box<dyn BatchStream>),
    /// Materialized rows in arbitrary order (hash-side operators).
    Rows(Vec<Row>),
    /// Hash-partitioned coded batch streams (between a splitting
    /// exchange and the gathering one), each standalone-coded under the
    /// carried spec.
    Parts(Vec<PartStream>, SortSpec),
}

impl BOut {
    fn into_rows(self) -> Vec<Row> {
        match self {
            BOut::Batches(b) => BatchRows::new(b).map(|r| r.row).collect(),
            BOut::Rows(rows) => rows,
            BOut::Parts(..) => {
                panic!("plan output is partitioned; gather it with an Exchange to single")
            }
        }
    }

    fn into_batches(self) -> Box<dyn BatchStream> {
        match self {
            BOut::Batches(b) => b,
            BOut::Rows(_) => panic!("plan output is unordered; not a coded stream"),
            BOut::Parts(..) => {
                panic!("plan output is partitioned; gather it with an Exchange to single")
            }
        }
    }

    fn into_parts(self) -> (Vec<PartStream>, SortSpec) {
        match self {
            BOut::Parts(p, spec) => (p, spec),
            _ => panic!("plan output is not partitioned"),
        }
    }
}

/// Join every scoped handle, collecting successes and the **first**
/// failure (a contained [`ExecError`] or a raw panic payload) — the
/// batched executor's copy of the exchange fault rule: all peers join
/// before any error propagates, so no thread outlives a failing query.
fn reap_scoped<'scope, T>(
    handles: Vec<std::thread::ScopedJoinHandle<'scope, Result<T, ExecError>>>,
) -> (Vec<T>, Option<ExecError>) {
    let mut outs = Vec::with_capacity(handles.len());
    let mut failure = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(value)) => outs.push(value),
            Ok(Err(err)) => {
                failure.get_or_insert(err);
            }
            Err(payload) => {
                failure.get_or_insert(ctx::error_from_panic(payload));
            }
        }
    }
    (outs, failure)
}

/// The profile node for child `i` of a profiled node (the profile tree
/// mirrors the plan tree child-for-child, by construction).
fn child(prof: Option<&Arc<ProfileNode>>, i: usize) -> Option<&Arc<ProfileNode>> {
    prof.map(|n| &n.children[i])
}

/// The per-partition gauge of an exchange's channel set, when profiled.
fn gauge_for(gauges: Option<&ExchangeGauges>, p: usize) -> Option<Arc<ChannelGauge>> {
    gauges.filter(|g| p < g.len()).map(|g| g.channel(p))
}

/// Batched lowering context: one per [`execute_batched`] call, cloned
/// into every producer/worker thread it spawns (all threads live inside
/// one [`std::thread::scope`], so plan and catalog borrows cross freely).
struct BCx<'scope, 'env> {
    catalog: &'env Catalog,
    options: &'env ExecOptions,
    /// Rows per batch for every operator that re-batches, unless an
    /// exchange edge carries its own stamped size.
    batch: usize,
    scope: &'scope Scope<'scope, 'env>,
    /// Meeting point for worker-thread counters; absorbed into the
    /// caller's [`Stats`] after the scope joins.
    shared: Arc<AtomicStats>,
}

impl Clone for BCx<'_, '_> {
    fn clone(&self) -> Self {
        BCx {
            catalog: self.catalog,
            options: self.options,
            batch: self.batch,
            scope: self.scope,
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<'env> BCx<'_, 'env> {
    fn table(&self, name: &str) -> &'env crate::catalog::Table {
        self.catalog
            .get(name)
            .unwrap_or_else(|| panic!("plan references unknown table {name}"))
    }

    /// Cut a row-kernel output into this plan's batches.
    fn batched(&self, s: impl OvcStream + 'static) -> BOut {
        BOut::Batches(Box::new(Batcher::new(s, self.batch)))
    }

    /// Lower and (when profiled) instrument one plan node — the batched
    /// mirror of `Cx::run`: the eager window times lowering on the
    /// calling thread, batch outputs are metered per `next_batch` by a
    /// [`ProfiledBatchStream`], and thread-spawning arms attribute their
    /// workers' counters to the node from the worker side.
    ///
    /// `gather` carries the consuming exchange's channel gauges down one
    /// edge: an `Exchange` to single hands its own gauges to its child so
    /// the partitioned operator's workers meter the send side of the very
    /// channels the gather meters on receive.
    fn run(
        &self,
        plan: &'env PhysicalPlan,
        stats: &Arc<Stats>,
        prof: Option<&Arc<ProfileNode>>,
        gather: Option<&ExchangeGauges>,
    ) -> BOut {
        let Some(node) = prof else {
            return self.lower(plan, stats, None, gather);
        };
        let before = stats.snapshot();
        let start = Instant::now();
        let out = self.lower(plan, stats, prof, gather);
        node.add_wall(start.elapsed());
        node.absorb_stats(&stats.snapshot().since(&before));
        match out {
            BOut::Batches(inner) => {
                let spec = inner.sort_spec();
                BOut::Batches(Box::new(ProfiledBatchStream {
                    inner,
                    spec,
                    node: Arc::clone(node),
                    stats: Arc::clone(stats),
                    rows: 0,
                    batches: 0,
                    wall: Duration::ZERO,
                    delta: StatsSnapshot::default(),
                }))
            }
            BOut::Rows(rows) => {
                node.add_rows_out(rows.len() as u64);
                BOut::Rows(rows)
            }
            // Partition rows/batches are counted at the producing side
            // (the spawning arms), where they are actually observed.
            parts => parts,
        }
    }

    fn lower(
        &self,
        plan: &'env PhysicalPlan,
        stats: &Arc<Stats>,
        prof: Option<&Arc<ProfileNode>>,
        gather: Option<&ExchangeGauges>,
    ) -> BOut {
        match &plan.op {
            PhysOp::ScanRows { table } => BOut::Rows(self.table(table).rows().to_vec()),
            PhysOp::ScanCoded { table } => {
                let t = self.table(table);
                let coded = t
                    .coded()
                    .unwrap_or_else(|| panic!("table {table} is not stored sorted"))
                    .to_vec();
                self.batched(VecStream::from_coded_spec(coded, t.sort_spec().clone()))
            }
            PhysOp::SortOvc {
                input,
                spec,
                memory_rows,
                fan_in,
                dop,
            } => {
                let rows = self.run(input, stats, child(prof, 0), None).into_rows();
                if *dop > 1 {
                    debug_assert!(spec.is_prefix() && !spec.normalized());
                    if spec.is_asc_prefix() {
                        self.batched(ovc_sort::parallel::parallel_sort(
                            rows,
                            spec.len(),
                            *dop,
                            *memory_rows,
                            *fan_in,
                            stats,
                        ))
                    } else {
                        self.batched(ovc_sort::parallel_sort_spec(
                            rows,
                            spec,
                            *dop,
                            *memory_rows,
                            *fan_in,
                            stats,
                        ))
                    }
                } else if spec.is_asc_prefix() && !spec.normalized() {
                    let mut storage = MemoryRunStorage::new(Arc::clone(stats));
                    let cfg = SortConfig::new(spec.len(), *memory_rows).with_fan_in(*fan_in);
                    self.batched(external_sort(rows, cfg, &mut storage, stats))
                } else {
                    let mut storage = MemoryRunStorage::new(Arc::clone(stats));
                    let cfg = SortConfig::new(spec.len(), *memory_rows).with_fan_in(*fan_in);
                    self.batched(external_sort_spec(rows, cfg, spec, &mut storage, stats))
                }
            }
            PhysOp::TrustSorted { input, spec } => {
                let mut stream = self.run(input, stats, child(prof, 0), None).into_batches();
                if self.options.verify_trusted {
                    // Audit the elision batch-wise, seams included: the
                    // batched contract is the row contract, so this is
                    // exactly the row executor's audit.
                    let stream_spec = stream.sort_spec();
                    debug_assert!(stream_spec.satisfies(spec));
                    let mut batches = Vec::new();
                    while let Some(b) = stream.next_batch() {
                        batches.push(b);
                    }
                    assert_batches_exact_spec(&batches, &stream_spec);
                    BOut::Batches(Box::new(VecBatchStream::new(batches, stream_spec)))
                } else {
                    BOut::Batches(stream)
                }
            }
            PhysOp::Reverse { input, spec } => {
                let stream = self.run(input, stats, child(prof, 0), None).into_batches();
                debug_assert!(stream.sort_spec().satisfies(&spec.reversed()));
                let mut rows: Vec<Row> = BatchRows::new(stream).map(|r| r.row).collect();
                rows.reverse();
                let codes = derive_codes_spec_counted(&rows, spec, stats);
                let coded: Vec<OvcRow> = rows
                    .into_iter()
                    .zip(codes)
                    .map(|(row, code)| OvcRow::new(row, code))
                    .collect();
                self.batched(VecStream::from_coded_spec(coded, spec.clone()))
            }
            PhysOp::InSortDistinct {
                input,
                spec,
                memory_rows,
                fan_in,
                dop,
            } => {
                debug_assert!(spec.is_asc_prefix());
                let key_len = spec.len();
                let rows = self.run(input, stats, child(prof, 0), None).into_rows();
                if *dop > 1 {
                    self.batched(ovc_sort::parallel::parallel_sort_distinct(
                        rows,
                        key_len,
                        *dop,
                        *memory_rows,
                        *fan_in,
                        stats,
                    ))
                } else {
                    let mut storage = MemoryRunStorage::new(Arc::clone(stats));
                    self.batched(in_sort_distinct(
                        rows,
                        key_len,
                        *memory_rows,
                        *fan_in,
                        &mut storage,
                        stats,
                    ))
                }
            }
            PhysOp::DedupCodes { input } => {
                let stream = self.run(input, stats, child(prof, 0), None).into_batches();
                BOut::Batches(Box::new(BatchDedup::new(stream)))
            }
            PhysOp::HashDistinct { input, memory_rows } => {
                let rows = self.run(input, stats, child(prof, 0), None).into_rows();
                BOut::Rows(ovc_baseline::hash_aggregate_distinct(
                    rows,
                    *memory_rows,
                    stats,
                ))
            }
            PhysOp::Filter { input, pred } => match self.run(input, stats, child(prof, 0), None) {
                BOut::Batches(s) => {
                    let p = pred.clone();
                    BOut::Batches(Box::new(BatchFilter::new(
                        s,
                        move |cols: &[Value]| p.eval_slice(cols),
                        Arc::clone(stats),
                    )))
                }
                BOut::Rows(rows) => BOut::Rows(rows.into_iter().filter(|r| pred.eval(r)).collect()),
                BOut::Parts(..) => panic!("filter over partitions is not planned"),
            },
            PhysOp::Project {
                input,
                cols,
                surviving_key,
            } => match self.run(input, stats, child(prof, 0), None) {
                BOut::Batches(s) => {
                    let cols = cols.clone();
                    BOut::Batches(Box::new(BatchProject::new(
                        s,
                        *surviving_key,
                        move |row: &[Value]| Row::new(cols.iter().map(|&c| row[c]).collect()),
                    )))
                }
                BOut::Rows(rows) => BOut::Rows(rows.iter().map(|r| r.project(cols)).collect()),
                BOut::Parts(..) => panic!("projection over partitions is not planned"),
            },
            PhysOp::GroupOvc {
                input,
                group_len,
                aggs,
            } => match self.run(input, stats, child(prof, 0), None) {
                BOut::Parts(parts, _) => {
                    let (group_len, aggs) = (*group_len, aggs.clone());
                    self.partitioned(
                        parts.into_iter().map(|p| vec![p]).collect(),
                        SortSpec::asc(group_len),
                        prof,
                        gather,
                        move |mut streams, local| {
                            let s = streams.pop().expect("one stream per group worker");
                            Box::new(GroupAggregate::new(
                                BatchRows::new(s),
                                group_len,
                                aggs.clone(),
                                local,
                            ))
                        },
                    )
                }
                other => self.batched(GroupAggregate::new(
                    BatchRows::new(other.into_batches()),
                    *group_len,
                    aggs.clone(),
                    Arc::clone(stats),
                )),
            },
            PhysOp::MergeJoinOvc {
                left,
                right,
                join_len,
                join_type,
            } => {
                let (lw, rw) = (left.props.width, right.props.width);
                match (
                    self.run(left, stats, child(prof, 0), None),
                    self.run(right, stats, child(prof, 1), None),
                ) {
                    (BOut::Parts(lp, lspec), BOut::Parts(rp, _)) => {
                        assert_eq!(lp.len(), rp.len(), "co-partitioned join arity mismatch");
                        let out_spec = match join_type {
                            ovc_exec::JoinType::LeftSemi | ovc_exec::JoinType::LeftAnti => lspec,
                            _ => lspec.prefix(*join_len).with_normalized(false),
                        };
                        let (join_len, join_type) = (*join_len, *join_type);
                        self.partitioned(
                            lp.into_iter().zip(rp).map(|(l, r)| vec![l, r]).collect(),
                            out_spec,
                            prof,
                            gather,
                            move |mut streams, local| {
                                let r = streams.pop().expect("right input");
                                let l = streams.pop().expect("left input");
                                Box::new(MergeJoin::new(
                                    BatchRows::new(l),
                                    BatchRows::new(r),
                                    join_len,
                                    join_type,
                                    lw,
                                    rw,
                                    local,
                                ))
                            },
                        )
                    }
                    (BOut::Batches(l), BOut::Batches(r)) => self.batched(MergeJoin::new(
                        BatchRows::new(l),
                        BatchRows::new(r),
                        *join_len,
                        *join_type,
                        lw,
                        rw,
                        Arc::clone(stats),
                    )),
                    _ => panic!("merge join inputs must both be streams or both partitioned"),
                }
            }
            PhysOp::GraceHashJoin {
                left,
                right,
                join_len,
                memory_rows,
            } => {
                let l = self.run(left, stats, child(prof, 0), None).into_rows();
                let r = self.run(right, stats, child(prof, 1), None).into_rows();
                BOut::Rows(ovc_baseline::grace_hash_join(
                    l,
                    r,
                    *join_len,
                    *memory_rows,
                    stats,
                ))
            }
            PhysOp::SetOpMerge { left, right, op } => {
                match (
                    self.run(left, stats, child(prof, 0), None),
                    self.run(right, stats, child(prof, 1), None),
                ) {
                    (BOut::Parts(lp, lspec), BOut::Parts(rp, _)) => {
                        assert_eq!(lp.len(), rp.len(), "co-partitioned set-op arity mismatch");
                        let op = *op;
                        self.partitioned(
                            lp.into_iter().zip(rp).map(|(l, r)| vec![l, r]).collect(),
                            lspec,
                            prof,
                            gather,
                            move |mut streams, local| {
                                let r = streams.pop().expect("right input");
                                let l = streams.pop().expect("left input");
                                Box::new(SetOperation::new(
                                    BatchRows::new(l),
                                    BatchRows::new(r),
                                    op,
                                    local,
                                ))
                            },
                        )
                    }
                    (BOut::Batches(l), BOut::Batches(r)) => self.batched(SetOperation::new(
                        BatchRows::new(l),
                        BatchRows::new(r),
                        *op,
                        Arc::clone(stats),
                    )),
                    _ => panic!("set operation inputs must both be streams or both partitioned"),
                }
            }
            PhysOp::TopK { input, k } => {
                let stream = self.run(input, stats, child(prof, 0), None).into_batches();
                BOut::Batches(Box::new(BatchTake::new(stream, *k)))
            }
            PhysOp::Exchange { input, to, batch } => match to {
                // Splitting shuffle, pipelined: the child subtree is
                // lowered and drained on the producer thread, and coded
                // batches flow to the partition channels as they fill —
                // no materialization at the boundary.
                Partitioning::Hash { cols, parts } => {
                    let b = batch.unwrap_or(self.batch);
                    let parts = *parts;
                    let spec = input.props.order.clone();
                    let own = prof.and_then(|n| n.gauges());
                    let mut txs = Vec::with_capacity(parts);
                    let mut streams: Vec<PartStream> = Vec::with_capacity(parts);
                    for p in 0..parts {
                        // ovc-lint: allow(bounded-channels-only) -- deliberate unbounded split→worker edge: in-flight data is bounded by the producer's input, matching the row executor's materialization bound (DESIGN.md §12); a sync_channel here can deadlock the single splitter against uneven partition drain (§4.10)
                        let (tx, rx) = mpsc::channel::<BatchFrame>();
                        txs.push(tx);
                        streams.push(Box::new(BatchChannelStream::new(
                            rx,
                            spec.clone(),
                            gauge_for(own, p),
                        )));
                    }
                    let send_gauges: Vec<Option<Arc<ChannelGauge>>> =
                        (0..parts).map(|p| gauge_for(own, p)).collect();
                    let cx = self.clone();
                    let src_plan: &'env PhysicalPlan = input;
                    let src_prof = child(prof, 0).cloned();
                    let node = prof.cloned();
                    let cols = cols.clone();
                    self.scope.spawn(move || {
                        let mut rows = 0u64;
                        let mut nbatches = 0u64;
                        let local = Stats::new_shared();
                        let result = ctx::contain(|| {
                            fault::maybe_panic();
                            let src = cx
                                .run(src_plan, &local, src_prof.as_ref(), None)
                                .into_batches();
                            route_batches(
                                src,
                                parts,
                                partition::by_cols_hash_slice(cols, parts),
                                b,
                                |p, fb| {
                                    let n = fb.len() as u64;
                                    rows += n;
                                    nbatches += 1;
                                    match &send_gauges[p] {
                                        Some(g) => {
                                            let t0 = Instant::now();
                                            let ok = txs[p].send(BatchFrame::Batch(fb)).is_ok();
                                            g.note_send_rows(t0.elapsed(), n);
                                            ok
                                        }
                                        None => txs[p].send(BatchFrame::Batch(fb)).is_ok(),
                                    }
                                },
                            );
                        });
                        if let Err(err) = result {
                            // Poison every partition so the workers see
                            // the typed error, not a short clean stream.
                            for tx in &txs {
                                let _ = tx.send(BatchFrame::Poison(err.clone()));
                            }
                        }
                        drop(txs);
                        let snap = local.snapshot();
                        if let Some(n) = &node {
                            n.add_rows_out(rows);
                            n.add_batches(nbatches);
                            n.absorb_stats(&snap);
                        }
                        cx.shared.absorb(&snap);
                    });
                    BOut::Parts(streams, spec)
                }
                // Gathering shuffle: merge the live partition streams on
                // the calling thread with the tree-of-losers, then re-cut
                // into batches.  Our own gauges ride down to the child so
                // its workers meter the send side of these channels.
                Partitioning::Single => {
                    let b = batch.unwrap_or(self.batch);
                    let own = prof.and_then(|n| n.gauges());
                    let (parts, pspec) = self.run(input, stats, child(prof, 0), own).into_parts();
                    let spec = parts
                        .first()
                        .map(|s| s.sort_spec())
                        .unwrap_or_else(|| pspec.clone());
                    let cursors: Vec<BatchRows<PartStream>> =
                        parts.into_iter().map(BatchRows::new).collect();
                    let merged = ovc_sort::merge_streams_spec(cursors, &spec, stats);
                    BOut::Batches(Box::new(Batcher::new(merged, b)))
                }
                Partitioning::Any => panic!("Exchange to `any` is not a layout"),
            },
            PhysOp::Repartition { input, cols, parts } => {
                // Materializing boundary by design (the planner prices it
                // that way): drain the incoming partition streams, rehash
                // with the threaded repartitioner, and re-batch.
                let (streams, pspec) = self.run(input, stats, child(prof, 0), None).into_parts();
                let handles: Vec<_> = streams
                    .into_iter()
                    .map(|s| {
                        self.scope.spawn(move || {
                            ctx::contain(|| CodedBatch::from_stream_flat(BatchRows::new(s)))
                        })
                    })
                    .collect();
                let (batches, failure) = reap_scoped(handles);
                if let Some(err) = failure {
                    ctx::propagate(err);
                }
                let key_len = batches
                    .first()
                    .map(|b| b.key_len())
                    .unwrap_or_else(|| input.props.order.len());
                let cols = cols.clone();
                let out = ovc_exec::parallel::repartition_threaded(
                    batches,
                    key_len,
                    *parts,
                    || partition::by_cols_hash(cols.clone(), *parts),
                    DEFAULT_CHANNEL_CAPACITY,
                    stats,
                );
                if let Some(n) = prof {
                    n.add_batches(out.len() as u64);
                    n.add_rows_out(out.iter().map(|b| b.len() as u64).sum());
                }
                let spec = out.first().map(|b| b.sort_spec().clone()).unwrap_or(pspec);
                let streams: Vec<PartStream> = out
                    .into_iter()
                    .map(|cb| Box::new(Batcher::new(cb.into_stream(), self.batch)) as PartStream)
                    .collect();
                BOut::Parts(streams, spec)
            }
        }
    }

    /// One worker thread per partition: `build` assembles the row kernel
    /// over that partition's input stream(s) on the worker, whose output
    /// is re-batched and sent down a bounded channel (in-flight row
    /// budget ≈ [`DEFAULT_CHANNEL_CAPACITY`], message capacity scaled by
    /// the batch size).  `gather` gauges, when present, meter the send
    /// side here and the receive side at the consuming merge.
    fn partitioned<F>(
        &self,
        inputs: Vec<Vec<PartStream>>,
        out_spec: SortSpec,
        prof: Option<&Arc<ProfileNode>>,
        gather: Option<&ExchangeGauges>,
        build: F,
    ) -> BOut
    where
        F: Fn(Vec<PartStream>, Arc<Stats>) -> Box<dyn OvcStream + Send> + Send + Sync + 'env,
    {
        let cap = DEFAULT_CHANNEL_CAPACITY.div_ceil(self.batch).max(1);
        let build = Arc::new(build);
        let mut outs: Vec<PartStream> = Vec::with_capacity(inputs.len());
        for (p, streams) in inputs.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel::<BatchFrame>(cap);
            let send_gauge = gauge_for(gather, p);
            let recv_gauge = gauge_for(gather, p);
            let build = Arc::clone(&build);
            let node = prof.cloned();
            let shared = Arc::clone(&self.shared);
            let batch = self.batch;
            self.scope.spawn(move || {
                let mut rows = 0u64;
                let mut nbatches = 0u64;
                let local = Stats::new_shared();
                let result = ctx::contain(|| {
                    fault::maybe_panic();
                    let op = build(streams, Arc::clone(&local));
                    let mut out = Batcher::new(op, batch);
                    while let Some(fb) = out.next_batch() {
                        let n = fb.len() as u64;
                        rows += n;
                        nbatches += 1;
                        let ok = match &send_gauge {
                            Some(g) => {
                                let t0 = Instant::now();
                                let ok = tx.send(BatchFrame::Batch(fb)).is_ok();
                                g.note_send_rows(t0.elapsed(), n);
                                ok
                            }
                            None => tx.send(BatchFrame::Batch(fb)).is_ok(),
                        };
                        if !ok {
                            // Consumer gone (early termination above): stop
                            // producing; the input chain unwinds the same way.
                            break;
                        }
                    }
                });
                if let Err(err) = result {
                    // Poison the gather edge: a worker death (its own
                    // panic, or a poisoned split edge re-raised by its
                    // input) becomes a typed error at the consumer.
                    let _ = tx.send(BatchFrame::Poison(err));
                }
                let snap = local.snapshot();
                if let Some(n) = &node {
                    n.add_rows_out(rows);
                    n.add_batches(nbatches);
                    n.absorb_stats(&snap);
                }
                shared.absorb(&snap);
            });
            outs.push(Box::new(BatchChannelStream::new(
                rx,
                out_spec.clone(),
                recv_gauge,
            )));
        }
        BOut::Parts(outs, out_spec)
    }
}

/// Metering adapter around one operator's batch output: the batched
/// [`ProfiledStream`](crate::exec) — times every `next_batch`, counts
/// rows and batches, attributes the calling thread's [`Stats`] delta,
/// and flushes once on drop (covering early termination).
struct ProfiledBatchStream {
    inner: Box<dyn BatchStream>,
    spec: SortSpec,
    node: Arc<ProfileNode>,
    stats: Arc<Stats>,
    rows: u64,
    batches: u64,
    wall: Duration,
    delta: StatsSnapshot,
}

impl BatchStream for ProfiledBatchStream {
    fn next_batch(&mut self) -> Option<FlatRows> {
        let before = self.stats.snapshot();
        let start = Instant::now();
        let item = self.inner.next_batch();
        self.wall += start.elapsed();
        self.delta.add(&self.stats.snapshot().since(&before));
        if let Some(b) = &item {
            self.rows += b.len() as u64;
            self.batches += 1;
        }
        item
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

impl Drop for ProfiledBatchStream {
    fn drop(&mut self) {
        self.node.add_rows_out(self.rows);
        self.node.add_batches(self.batches);
        self.node.add_wall(self.wall);
        self.node.absorb_stats(&self.delta);
    }
}
