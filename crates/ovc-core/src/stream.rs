//! Sorted streams that carry offset-value codes between operators.
//!
//! F1 Query introduces "an artificial column for offset-value codes …
//! during query planning for order-producing physical operators"
//! (Section 5).  Our equivalent is [`OvcStream`]: an iterator of
//! [`OvcRow`]s, sorted ascending on the leading `key_len()` columns, where
//! every code is **exact** relative to the stream's previous row
//! (DESIGN.md §3.3).  Operators consume one stream and produce another,
//! deriving the output codes with the theorem machinery — never by
//! re-comparing rows.

use crate::derive::{derive_codes, derive_codes_spec};
use crate::flat::FlatRows;
use crate::ovc::Ovc;
use crate::row::Row;
use crate::spec::SortSpec;

/// A row travelling through a pipeline together with its offset-value code
/// (the paper's "artificial column").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OvcRow {
    /// The row.
    pub row: Row,
    /// Exact ascending code relative to the stream's previous row.
    pub code: Ovc,
}

impl OvcRow {
    /// Bundle a row with its code.
    pub fn new(row: Row, code: Ovc) -> Self {
        OvcRow { row, code }
    }
}

/// A sorted stream of coded rows.
///
/// Contract (checked by [`crate::derive::assert_codes_exact`] in tests):
/// rows ascend on the first `key_len()` columns and each `code` is the
/// exact code relative to the preceding row (the first row relative to
/// "−∞").
pub trait OvcStream: Iterator<Item = OvcRow> {
    /// Number of leading sort-key columns (the code arity).
    fn key_len(&self) -> usize;

    /// The ordering contract this stream's rows and codes follow — the
    /// stream's first-class "interesting ordering".  Defaults to
    /// all-ascending on the leading `key_len()` columns, which is what
    /// every operator produced before [`SortSpec`] existed; streams that
    /// carry descending or normalized-key orders override it.
    fn sort_spec(&self) -> SortSpec {
        SortSpec::asc(self.key_len())
    }
}

impl<S: OvcStream + ?Sized> OvcStream for Box<S> {
    fn key_len(&self) -> usize {
        (**self).key_len()
    }
    fn sort_spec(&self) -> SortSpec {
        (**self).sort_spec()
    }
}

impl<S: OvcStream + ?Sized> OvcStream for &mut S {
    fn key_len(&self) -> usize {
        (**self).key_len()
    }
    fn sort_spec(&self) -> SortSpec {
        (**self).sort_spec()
    }
}

/// An in-memory stream over pre-coded rows.
pub struct VecStream {
    iter: std::vec::IntoIter<OvcRow>,
    spec: SortSpec,
}

impl VecStream {
    /// Wrap already-coded rows.  Debug builds verify the contract.
    pub fn from_coded(rows: Vec<OvcRow>, key_len: usize) -> Self {
        Self::from_coded_spec(rows, SortSpec::asc(key_len))
    }

    /// Wrap rows coded under an explicit [`SortSpec`].  Debug builds
    /// verify the spec's stream contract (in place — no row clones).
    pub fn from_coded_spec(rows: Vec<OvcRow>, spec: SortSpec) -> Self {
        #[cfg(debug_assertions)]
        {
            if let Some(i) = crate::derive::find_code_violation_slices(
                rows.iter().map(|r| (r.row.cols(), r.code)),
                &spec,
            ) {
                panic!("VecStream::from_coded_spec: code violation at row {i} under {spec}");
            }
        }
        VecStream {
            iter: rows.into_iter(),
            spec,
        }
    }

    /// Derive codes for sorted rows and wrap them.  Panics if unsorted.
    pub fn from_sorted_rows(rows: Vec<Row>, key_len: usize) -> Self {
        assert!(
            crate::derive::is_sorted(&rows, key_len),
            "VecStream::from_sorted_rows requires sorted input"
        );
        let codes = derive_codes(&rows, key_len);
        let coded: Vec<OvcRow> = rows
            .into_iter()
            .zip(codes)
            .map(|(row, code)| OvcRow::new(row, code))
            .collect();
        VecStream {
            iter: coded.into_iter(),
            spec: SortSpec::asc(key_len),
        }
    }

    /// Derive codes for rows already ordered under `spec` and wrap them.
    /// Panics if the rows violate the spec's order.
    pub fn from_sorted_rows_spec(rows: Vec<Row>, spec: SortSpec) -> Self {
        assert!(
            crate::derive::is_sorted_spec(&rows, &spec),
            "VecStream::from_sorted_rows_spec requires input sorted under {spec}"
        );
        let codes = derive_codes_spec(&rows, &spec);
        let coded: Vec<OvcRow> = rows
            .into_iter()
            .zip(codes)
            .map(|(row, code)| OvcRow::new(row, code))
            .collect();
        VecStream {
            iter: coded.into_iter(),
            spec,
        }
    }

    /// Sort the rows, derive codes, and wrap them (test convenience).
    pub fn from_unsorted_rows(mut rows: Vec<Row>, key_len: usize) -> Self {
        rows.sort_by(|a, b| a.key(key_len).cmp(b.key(key_len)));
        Self::from_sorted_rows(rows, key_len)
    }
}

impl Iterator for VecStream {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        self.iter.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.iter.size_hint()
    }
}

impl OvcStream for VecStream {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// A coded stream that may cross a thread boundary.
///
/// This is a pure marker: any [`OvcStream`] whose row source is `Send`
/// (which includes [`VecStream`], [`CodedBatch`] cursors, and the threaded
/// exchange's channel streams) already satisfies it via the blanket impl.
/// The exactness contract travels with the stream — codes are a function
/// of the row sequence alone, so moving a stream between threads cannot
/// invalidate them.
pub trait SendOvcStream: OvcStream + Send {}

impl<S: OvcStream + Send> SendOvcStream for S {}

/// An owned, sendable batch of coded rows — the hand-off unit between
/// pipeline threads.
///
/// Where a single-threaded pipeline passes an [`OvcStream`] by value, the
/// parallel operators (`ovc-exec`'s threaded exchange, `ovc-sort`'s
/// parallel run generation) materialize a `CodedBatch`, move it across a
/// thread or channel, and resume streaming on the other side with
/// [`CodedBatch::into_stream`].  The batch carries the same contract as
/// the stream it came from: rows sorted on the leading `key_len` columns,
/// every code exact relative to its predecessor.
#[derive(Clone, Debug)]
pub struct CodedBatch {
    repr: BatchRepr,
    spec: SortSpec,
}

/// Either layout of a batch's rows: boxed (one allocation per row, the
/// historical layout) or flat columnar (one contiguous buffer).
#[derive(Clone, Debug)]
enum BatchRepr {
    Boxed(Vec<OvcRow>),
    Flat(FlatRows),
}

impl CodedBatch {
    /// Materialize a coded stream into a sendable batch, carrying the
    /// stream's ordering contract along.
    pub fn from_stream<S: OvcStream>(stream: S) -> Self {
        let spec = stream.sort_spec();
        CodedBatch {
            repr: BatchRepr::Boxed(stream.collect()),
            spec,
        }
    }

    /// Materialize a coded stream into a **flat-backed** batch: rows are
    /// copied into one contiguous buffer as they arrive, so the batch
    /// crosses threads (and later re-streams) without per-row pointer
    /// chasing.  Requires the stream's rows to share one width (operator
    /// outputs are homogeneous).
    pub fn from_stream_flat<S: OvcStream>(stream: S) -> Self {
        let spec = stream.sort_spec();
        let mut flat: Option<FlatRows> = None;
        for OvcRow { row, code } in stream {
            flat.get_or_insert_with(|| FlatRows::new(row.width()))
                .push(row.cols(), code);
        }
        CodedBatch {
            repr: BatchRepr::Flat(flat.unwrap_or_else(|| FlatRows::new(spec.len()))),
            spec,
        }
    }

    /// Wrap already-coded rows.  Debug builds verify the contract.
    pub fn from_coded(rows: Vec<OvcRow>, key_len: usize) -> Self {
        Self::from_coded_spec(rows, SortSpec::asc(key_len))
    }

    /// Wrap rows coded under an explicit [`SortSpec`].  Debug builds
    /// verify the spec's stream contract (in place — no row clones).
    pub fn from_coded_spec(rows: Vec<OvcRow>, spec: SortSpec) -> Self {
        #[cfg(debug_assertions)]
        {
            if let Some(i) = crate::derive::find_code_violation_slices(
                rows.iter().map(|r| (r.row.cols(), r.code)),
                &spec,
            ) {
                panic!("CodedBatch::from_coded: code violation at row {i} under {spec}");
            }
        }
        CodedBatch {
            repr: BatchRepr::Boxed(rows),
            spec,
        }
    }

    /// Wrap a flat buffer coded under `spec`.  Debug builds verify the
    /// spec's stream contract in place.
    pub fn from_flat(flat: FlatRows, spec: SortSpec) -> Self {
        #[cfg(debug_assertions)]
        {
            if let Some(i) = crate::derive::find_code_violation_slices(flat.iter(), &spec) {
                panic!("CodedBatch::from_flat: code violation at row {i} under {spec}");
            }
        }
        CodedBatch {
            repr: BatchRepr::Flat(flat),
            spec,
        }
    }

    /// Derive codes for sorted rows and wrap them.  Panics if unsorted.
    pub fn from_sorted_rows(rows: Vec<Row>, key_len: usize) -> Self {
        Self::from_stream(VecStream::from_sorted_rows(rows, key_len))
    }

    /// Resume streaming (typically on a different thread than the one
    /// that materialized the batch).  A flat batch materializes each
    /// [`OvcRow`] lazily, straight from the contiguous buffer.
    pub fn into_stream(self) -> CodedBatchIter {
        match self.repr {
            BatchRepr::Boxed(rows) => CodedBatchIter {
                inner: CodedBatchIterRepr::Boxed(rows.into_iter()),
                spec: self.spec,
            },
            BatchRepr::Flat(flat) => CodedBatchIter {
                inner: CodedBatchIterRepr::Flat { flat, pos: 0 },
                spec: self.spec,
            },
        }
    }

    /// Consume into boxed coded rows (materializing if flat).
    pub fn into_rows(self) -> Vec<OvcRow> {
        match self.repr {
            BatchRepr::Boxed(rows) => rows,
            BatchRepr::Flat(flat) => flat.to_ovc_rows(),
        }
    }

    /// Materialize the coded rows without consuming the batch.
    pub fn to_ovc_rows(&self) -> Vec<OvcRow> {
        match &self.repr {
            BatchRepr::Boxed(rows) => rows.clone(),
            BatchRepr::Flat(flat) => flat.to_ovc_rows(),
        }
    }

    /// Is this batch flat-backed?
    pub fn is_flat(&self) -> bool {
        matches!(self.repr, BatchRepr::Flat(_))
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        match &self.repr {
            BatchRepr::Boxed(rows) => rows.len(),
            BatchRepr::Flat(flat) => flat.len(),
        }
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sort-key arity of the batch's codes.
    pub fn key_len(&self) -> usize {
        self.spec.len()
    }

    /// The ordering contract the batch's rows and codes follow.
    pub fn sort_spec(&self) -> &SortSpec {
        &self.spec
    }
}

/// The stream a [`CodedBatch`] reopens into: boxed rows pass through,
/// flat rows materialize lazily from the contiguous buffer.
pub struct CodedBatchIter {
    inner: CodedBatchIterRepr,
    spec: SortSpec,
}

enum CodedBatchIterRepr {
    Boxed(std::vec::IntoIter<OvcRow>),
    Flat { flat: FlatRows, pos: usize },
}

impl Iterator for CodedBatchIter {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        match &mut self.inner {
            CodedBatchIterRepr::Boxed(iter) => iter.next(),
            CodedBatchIterRepr::Flat { flat, pos } => {
                if *pos >= flat.len() {
                    return None;
                }
                let r = OvcRow::new(Row::from_slice(flat.row(*pos)), flat.code(*pos));
                *pos += 1;
                Some(r)
            }
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            CodedBatchIterRepr::Boxed(iter) => iter.size_hint(),
            CodedBatchIterRepr::Flat { flat, pos } => {
                let left = flat.len() - pos;
                (left, Some(left))
            }
        }
    }
}

impl OvcStream for CodedBatchIter {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// Drain a stream into `(Row, Ovc)` pairs (test/bench convenience).
pub fn collect_pairs<S: OvcStream>(stream: S) -> Vec<(Row, Ovc)> {
    stream.map(|r| (r.row, r.code)).collect()
}

/// Drain a stream into rows only.
pub fn collect_rows<S: OvcStream>(stream: S) -> Vec<Row> {
    stream.map(|r| r.row).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_stream_from_sorted_rows_codes_match_table1() {
        let stream = VecStream::from_sorted_rows(crate::table1::rows(), 4);
        assert_eq!(stream.key_len(), 4);
        let pairs = collect_pairs(stream);
        let codes: Vec<Ovc> = pairs.iter().map(|(_, c)| *c).collect();
        assert_eq!(codes, crate::table1::asc_codes());
    }

    #[test]
    #[should_panic(expected = "requires sorted input")]
    fn vec_stream_rejects_unsorted() {
        let mut rows = crate::table1::rows();
        rows.reverse();
        let _ = VecStream::from_sorted_rows(rows, 4);
    }

    #[test]
    fn from_unsorted_sorts_first() {
        let mut rows = crate::table1::rows();
        rows.reverse();
        let stream = VecStream::from_unsorted_rows(rows, 4);
        let got = collect_rows(stream);
        assert_eq!(got, crate::table1::rows());
    }

    #[test]
    fn boxed_stream_preserves_key_len() {
        let stream: Box<dyn OvcStream> =
            Box::new(VecStream::from_sorted_rows(crate::table1::rows(), 4));
        assert_eq!(stream.key_len(), 4);
        assert_eq!(stream.count(), 7);
    }

    #[test]
    fn empty_stream() {
        let stream = VecStream::from_sorted_rows(vec![], 2);
        assert_eq!(collect_pairs(stream).len(), 0);
    }

    #[test]
    fn coded_batch_round_trips_across_a_thread() {
        fn assert_send_stream<S: crate::stream::SendOvcStream>(_: &S) {}

        let batch = CodedBatch::from_stream(VecStream::from_sorted_rows(crate::table1::rows(), 4));
        assert_eq!(batch.len(), 7);
        assert!(!batch.is_empty());
        assert_eq!(batch.key_len(), 4);
        // The batch (and the stream it reopens) may cross threads.
        let reopened = std::thread::spawn(move || {
            let stream = batch.into_stream();
            assert_send_stream(&stream);
            collect_pairs(stream)
        })
        .join()
        .unwrap();
        let codes: Vec<Ovc> = reopened.iter().map(|(_, c)| *c).collect();
        assert_eq!(codes, crate::table1::asc_codes());
    }

    #[test]
    fn spec_streams_carry_their_ordering_contract() {
        use crate::spec::{Direction, SortSpec};
        let spec = SortSpec::with_dirs(&[Direction::Desc, Direction::Asc]);
        let rows: Vec<Row> = [[9u64, 1], [9, 5], [2, 0]]
            .iter()
            .map(|c| Row::new(c.to_vec()))
            .collect();
        let stream = VecStream::from_sorted_rows_spec(rows, spec.clone());
        assert_eq!(stream.key_len(), 2);
        assert_eq!(stream.sort_spec(), spec);
        let batch = CodedBatch::from_stream(stream);
        assert_eq!(batch.sort_spec(), &spec);
        let reopened = batch.into_stream();
        assert_eq!(reopened.sort_spec(), spec);
        let pairs = collect_pairs(reopened);
        crate::derive::assert_codes_exact_spec(&pairs, &spec);
        // The default contract on plain streams is ascending.
        let plain = VecStream::from_sorted_rows(crate::table1::rows(), 4);
        assert_eq!(plain.sort_spec(), SortSpec::asc(4));
    }

    #[test]
    #[should_panic(expected = "requires input sorted under")]
    fn spec_stream_rejects_order_violations() {
        use crate::spec::SortSpec;
        let rows = vec![Row::new(vec![1]), Row::new(vec![2])];
        let _ = VecStream::from_sorted_rows_spec(rows, SortSpec::desc(1));
    }

    #[test]
    fn coded_batch_from_coded_and_rows_accessors() {
        let batch = CodedBatch::from_sorted_rows(crate::table1::rows(), 4);
        let again = CodedBatch::from_coded(batch.to_ovc_rows(), 4);
        assert_eq!(again.into_rows().len(), 7);
    }

    #[test]
    fn flat_batch_round_trips_and_matches_boxed() {
        let boxed = CodedBatch::from_sorted_rows(crate::table1::rows(), 4);
        let flat =
            CodedBatch::from_stream_flat(VecStream::from_sorted_rows(crate::table1::rows(), 4));
        assert!(flat.is_flat() && !boxed.is_flat());
        assert_eq!(flat.len(), boxed.len());
        assert_eq!(flat.to_ovc_rows(), boxed.to_ovc_rows());
        // Reopened streams agree item for item, and the flat batch can be
        // rebuilt from its parts.
        let pairs_flat = collect_pairs(flat.into_stream());
        let pairs_boxed = collect_pairs(boxed.into_stream());
        assert_eq!(pairs_flat, pairs_boxed);
        let direct = CodedBatch::from_flat(
            crate::flat::FlatRows::from_ovc_rows(
                VecStream::from_sorted_rows(crate::table1::rows(), 4).collect(),
                4,
            ),
            SortSpec::asc(4),
        );
        assert_eq!(collect_pairs(direct.into_stream()), pairs_boxed);
    }

    #[test]
    fn empty_flat_batch() {
        let flat = CodedBatch::from_stream_flat(VecStream::from_sorted_rows(vec![], 2));
        assert!(flat.is_empty() && flat.is_flat());
        assert_eq!(flat.into_stream().count(), 0);
    }
}
