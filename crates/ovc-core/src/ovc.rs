//! Ascending offset-value codes packed into a single `u64`.
//!
//! An offset-value code (OVC) captures one row's key relative to another key
//! earlier in the sort sequence (Section 3 of the paper).  The *offset* is
//! the length of the maximal shared prefix; the *value* is the loser's data
//! at that offset.  For ascending sort order the code stores
//! `arity - offset` in the high bits and the value in the low bits, so a
//! single unsigned integer comparison orders two codes: a longer shared
//! prefix (higher offset) yields a smaller code and therefore sorts earlier.
//!
//! Following the F1 implementation described in Section 5, fences ("invalid"
//! key values marking not-yet-filled or exhausted merge inputs) are folded
//! into the same 64-bit integer so that one comparison instruction handles
//! fences and codes alike:
//!
//! ```text
//! bit 63..62 : 01 = valid code   (early fence = all zeros, late = all ones)
//! bit 61..48 : arity - offset    (14 bits: up to 16383 key columns)
//! bit 47..0  : column value, clamped monotonically to 48 bits
//! ```
//!
//! The paper's test data uses small domains where values fit the field
//! exactly.  For arbitrary `u64` column values we clamp the stored value
//! with the monotone map `min(v, 2^48 - 1)`.  Clamping preserves soundness:
//! * if two codes differ, the underlying keys differ in the same direction
//!   (monotonicity), so code comparisons never mis-order rows;
//! * if two codes are equal but the value field is saturated, the comparator
//!   falls back to column comparisons *starting at the offset* (instead of
//!   offset + 1), so a hidden difference at the offset column is found.

use crate::row::Value;

/// Number of bits for the clamped column value.
pub const VALUE_BITS: u32 = 48;
/// Mask for the value field.
pub const VALUE_MASK: u64 = (1u64 << VALUE_BITS) - 1;
/// Number of bits for the `arity - offset` field.
pub const OFFSET_BITS: u32 = 14;
/// Mask for the `arity - offset` field (after shifting).
pub const OFFSET_FIELD_MASK: u64 = (1u64 << OFFSET_BITS) - 1;
/// Maximum supported sort-key arity.
pub const MAX_ARITY: usize = OFFSET_FIELD_MASK as usize;
/// The "valid code" tag bit pattern (bits 63..62 = 01).
const VALID_TAG: u64 = 1u64 << 62;

/// Monotone clamp of a column value into the 48-bit value field.
#[inline]
pub fn clamp_value(v: Value) -> u64 {
    v.min(VALUE_MASK)
}

/// An ascending offset-value code.
///
/// Total order: **smaller code = earlier in ascending sort order** (for two
/// keys coded relative to the same base).  The early fence is smaller than
/// every valid code and the late fence larger, so fence handling is free.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ovc(u64);

impl Ovc {
    /// Early fence: sorts before every valid code.  Used for queue slots
    /// that have not been filled yet.
    pub const EARLY_FENCE: Ovc = Ovc(0);

    /// Late fence: sorts after every valid code.  Used for exhausted merge
    /// inputs.
    pub const LATE_FENCE: Ovc = Ovc(u64::MAX);

    /// Construct a valid code from an offset, the value at that offset, and
    /// the sort-key arity.
    ///
    /// `offset == arity` encodes a duplicate key (the entire key is shared);
    /// the value field is empty in that case, matching Table 1's "-" rows.
    ///
    /// Panics (debug) if `offset > arity` or `arity > MAX_ARITY`.
    #[inline]
    pub fn new(offset: usize, value: Value, arity: usize) -> Ovc {
        debug_assert!(
            arity <= MAX_ARITY,
            "sort-key arity {arity} exceeds {MAX_ARITY}"
        );
        debug_assert!(offset <= arity, "offset {offset} exceeds arity {arity}");
        if offset == arity {
            return Ovc::duplicate();
        }
        let field = (arity - offset) as u64;
        Ovc(VALID_TAG | (field << VALUE_BITS) | clamp_value(value))
    }

    /// The code of a duplicate key: offset equals the arity, no value.
    ///
    /// This is the smallest valid code, so duplicates sort directly behind
    /// their base — Table 1's fifth row (`400` descending / `0` ascending).
    #[inline]
    pub const fn duplicate() -> Ovc {
        Ovc(VALID_TAG)
    }

    /// The code of the first row of a stream: relative to an imaginary "−∞"
    /// predecessor that shares no prefix, i.e. offset 0 and the row's first
    /// key column as value (Table 1, first row).
    ///
    /// An empty key (arity 0) yields the duplicate code: all rows compare
    /// equal under an empty key.
    #[inline]
    pub fn initial(key: &[Value]) -> Ovc {
        if key.is_empty() {
            Ovc::duplicate()
        } else {
            Ovc::new(0, key[0], key.len())
        }
    }

    /// Raw 64-bit representation (for spill formats and display).
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a code from its raw representation.
    #[inline]
    pub const fn from_raw(raw: u64) -> Ovc {
        Ovc(raw)
    }

    /// Is this a valid code (not a fence)?
    #[inline]
    pub const fn is_valid(self) -> bool {
        (self.0 >> 62) == 0b01
    }

    /// Is this the early fence?
    #[inline]
    pub const fn is_early_fence(self) -> bool {
        self.0 == 0
    }

    /// Is this the late fence?
    #[inline]
    pub const fn is_late_fence(self) -> bool {
        self.0 == u64::MAX
    }

    /// The `arity - offset` field.  Zero means a duplicate key.
    #[inline]
    pub const fn arity_minus_offset(self) -> usize {
        ((self.0 >> VALUE_BITS) & OFFSET_FIELD_MASK) as usize
    }

    /// The offset (shared-prefix length) encoded in this code, given the
    /// sort-key arity.
    #[inline]
    pub fn offset(self, arity: usize) -> usize {
        debug_assert!(self.is_valid());
        debug_assert!(self.arity_minus_offset() <= arity);
        arity - self.arity_minus_offset()
    }

    /// The (clamped) value field.
    #[inline]
    pub const fn value(self) -> u64 {
        self.0 & VALUE_MASK
    }

    /// True if the value field was saturated by clamping, in which case a
    /// code-equality tie must re-compare the offset column itself.
    #[inline]
    pub const fn value_saturated(self) -> bool {
        (self.0 & VALUE_MASK) == VALUE_MASK
    }

    /// Does this code mark a duplicate key (offset == arity)?
    #[inline]
    pub fn is_duplicate(self) -> bool {
        self.is_valid() && self.arity_minus_offset() == 0
    }

    /// Render the code the way the paper's Table 1 does for a decimal
    /// domain: `(arity - offset) * 100 + value`, with duplicates shown as 0.
    ///
    /// Only meaningful for values below 100; used by examples and tests that
    /// reproduce the paper's tables verbatim.
    pub fn paper_decimal(self) -> u64 {
        debug_assert!(self.is_valid());
        (self.arity_minus_offset() as u64) * 100 + self.value()
    }

    /// First column index at which a comparator must resume column
    /// comparisons after two *equal* codes, given the sort-key arity.
    ///
    /// Equal unsaturated codes prove equality at the offset column, so the
    /// comparison resumes at `offset + 1`; saturated codes may hide a
    /// difference at the offset column itself.
    #[inline]
    pub fn resume_column(self, arity: usize) -> usize {
        let off = self.offset(arity);
        if self.value_saturated() {
            off
        } else {
            off + 1
        }
    }
}

impl Default for Ovc {
    /// The early fence: identity element for the ascending `max` theorem.
    fn default() -> Self {
        Ovc::EARLY_FENCE
    }
}

impl std::fmt::Debug for Ovc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_early_fence() {
            write!(f, "Ovc(EARLY)")
        } else if self.is_late_fence() {
            write!(f, "Ovc(LATE)")
        } else if !self.is_valid() {
            write!(f, "Ovc(raw={:#x})", self.0)
        } else if self.arity_minus_offset() == 0 {
            write!(f, "Ovc(dup)")
        } else {
            write!(
                f,
                "Ovc(arity-offset={}, value={})",
                self.arity_minus_offset(),
                self.value()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fences_bracket_valid_codes() {
        let lo = Ovc::new(3, 0, 4); // deep offset, tiny value
        let hi = Ovc::new(0, VALUE_MASK, 4); // no shared prefix, huge value
        assert!(Ovc::EARLY_FENCE < Ovc::duplicate());
        assert!(Ovc::EARLY_FENCE < lo);
        assert!(lo < hi);
        assert!(hi < Ovc::LATE_FENCE);
        assert!(Ovc::duplicate() < lo);
    }

    #[test]
    fn higher_offset_sorts_earlier() {
        // Same base: a key sharing 3 columns sorts before one sharing 1.
        let deep = Ovc::new(3, 99, 4);
        let shallow = Ovc::new(1, 1, 4);
        assert!(deep < shallow);
    }

    #[test]
    fn same_offset_orders_by_value() {
        let small = Ovc::new(2, 10, 4);
        let big = Ovc::new(2, 11, 4);
        assert!(small < big);
    }

    #[test]
    fn round_trip_offset_and_value() {
        for arity in 1..=6usize {
            for offset in 0..arity {
                let c = Ovc::new(offset, 42, arity);
                assert!(c.is_valid());
                assert_eq!(c.offset(arity), offset);
                assert_eq!(c.value(), 42);
                assert!(!c.is_duplicate());
            }
            let dup = Ovc::new(arity, 0, arity);
            assert!(dup.is_duplicate());
            assert_eq!(dup.offset(arity), arity);
        }
    }

    #[test]
    fn duplicate_is_smallest_valid_code() {
        let dup = Ovc::duplicate();
        for offset in 0..4 {
            assert!(dup < Ovc::new(offset, 0, 4));
        }
        assert!(Ovc::EARLY_FENCE < dup);
    }

    #[test]
    fn clamping_is_monotone_and_detected() {
        let a = Ovc::new(0, VALUE_MASK - 1, 1);
        let b = Ovc::new(0, VALUE_MASK, 1);
        let c = Ovc::new(0, u64::MAX, 1);
        assert!(a < b);
        assert_eq!(b, c); // both saturate
        assert!(!a.value_saturated());
        assert!(b.value_saturated());
        assert_eq!(b.resume_column(1), 0);
        assert_eq!(a.resume_column(1), 1);
    }

    #[test]
    fn initial_code_matches_table1_first_row() {
        // Table 1, first row: key (5,7,3,9), arity 4 => ascending code 405.
        let code = Ovc::initial(&[5, 7, 3, 9]);
        assert_eq!(code.offset(4), 0);
        assert_eq!(code.value(), 5);
        assert_eq!(code.paper_decimal(), 405);
    }

    #[test]
    fn initial_code_empty_key_is_duplicate() {
        assert!(Ovc::initial(&[]).is_duplicate());
    }

    #[test]
    fn raw_round_trip() {
        let c = Ovc::new(2, 77, 5);
        assert_eq!(Ovc::from_raw(c.raw()), c);
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Ovc::EARLY_FENCE), "Ovc(EARLY)");
        assert_eq!(format!("{:?}", Ovc::LATE_FENCE), "Ovc(LATE)");
        assert_eq!(format!("{:?}", Ovc::duplicate()), "Ovc(dup)");
        assert_eq!(
            format!("{:?}", Ovc::new(1, 9, 4)),
            "Ovc(arity-offset=3, value=9)"
        );
    }
}
