//! Per-operator runtime profiling: the observability layer behind
//! `EXPLAIN ANALYZE`.
//!
//! The paper's argument is quantitative — codes turn column comparisons
//! into integer comparisons — and F1 Query / Napa justify the technique
//! with *per-operator* accounting.  [`crate::Stats`] measures one
//! pipeline in aggregate; this module adds the per-node view:
//!
//! * [`ProfileNode`] — a live, thread-safe accumulator tree mirroring a
//!   physical plan's shape.  Instrumented stream adapters (in
//!   `ovc-plan::exec`) stamp wall time, row counts, and
//!   [`StatsSnapshot`] deltas into their node; worker threads report
//!   through the node's embedded [`AtomicStats`] so per-thread counters
//!   land on the operator that spawned them.
//! * [`ChannelGauge`] / [`ExchangeGauges`] — per-partition counters for
//!   the threaded exchange: how long producers blocked sending, how long
//!   consumers blocked receiving, and the peak queue occupancy of each
//!   bounded channel.  These make the "exchange sandwich" cost readable
//!   from any profiled run instead of requiring a bench session.
//! * [`PlanProfile`] / [`OpMetrics`] — the frozen snapshot of a finished
//!   run, ready for rendering or serialization.
//!
//! **Accounting convention (the Postgres `EXPLAIN ANALYZE` convention):**
//! every per-node figure — wall time and counter deltas alike — is
//! *inclusive* of the node's subtree, because a streaming operator's
//! `next()` necessarily contains its children's work.  Subtract children
//! to recover self time.  **No-perturbation rule:** profiling observes
//! rows and codes, never alters them; profiled and unprofiled execution
//! produce byte-identical output and identical [`crate::Stats`] totals
//! (held to that by `tests/profile_properties.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::stats::{AtomicStats, StatsSnapshot};

/// Frozen per-operator measurements from one profiled run.
///
/// All figures are inclusive of the operator's subtree (see the module
/// docs); `rows_in` is therefore *not* stored — compute it as the sum of
/// the children's `rows_out` ([`PlanProfile::rows_in`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpMetrics {
    /// Rows this operator emitted.
    pub rows_out: u64,
    /// Batches (partitions) emitted, for partition-producing operators;
    /// 0 for ordinary streams.
    pub batches: u64,
    /// Wall time spent producing this operator's output, inclusive of
    /// its subtree.
    pub wall: Duration,
    /// Counter deltas (column comparisons, code comparisons, spill
    /// volume, …) attributed to this subtree.
    pub stats: StatsSnapshot,
}

impl OpMetrics {
    /// Column-value comparisons in this subtree (the expensive kind).
    pub fn col_cmps(&self) -> u64 {
        self.stats.col_value_cmps
    }

    /// Offset-value-code comparisons in this subtree — the comparisons
    /// the paper's technique *resolves by integer inspection* instead of
    /// column access.
    pub fn code_resolved_cmps(&self) -> u64 {
        self.stats.ovc_cmps
    }
}

/// Live accumulator for one plan operator, shared (via [`Arc`]) between
/// the executor's instrumented stream adapters and any worker threads
/// the operator spawns.  All fields are atomic: writers never block.
#[derive(Debug)]
pub struct ProfileNode {
    /// Operator name (matches the plan node's `op_name()`).
    pub name: String,
    /// Operator detail string as rendered by `EXPLAIN` (key, predicate,
    /// partitioning target, …).
    pub detail: String,
    rows_out: AtomicU64,
    batches: AtomicU64,
    wall_ns: AtomicU64,
    stats: AtomicStats,
    gauges: Option<ExchangeGauges>,
    /// Child nodes, in the plan node's child order.
    pub children: Vec<Arc<ProfileNode>>,
}

impl ProfileNode {
    /// A fresh node with zeroed counters.
    pub fn new(
        name: impl Into<String>,
        detail: impl Into<String>,
        children: Vec<Arc<ProfileNode>>,
    ) -> ProfileNode {
        ProfileNode {
            name: name.into(),
            detail: detail.into(),
            rows_out: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
            stats: AtomicStats::default(),
            gauges: None,
            children,
        }
    }

    /// As [`ProfileNode::new`], with per-partition exchange gauges
    /// attached (one [`ChannelGauge`] per channel).
    pub fn with_gauges(
        name: impl Into<String>,
        detail: impl Into<String>,
        children: Vec<Arc<ProfileNode>>,
        channels: usize,
    ) -> ProfileNode {
        ProfileNode {
            gauges: Some(ExchangeGauges::new(channels)),
            ..ProfileNode::new(name, detail, children)
        }
    }

    /// The node's exchange gauges, if it drives a threaded exchange.
    pub fn gauges(&self) -> Option<&ExchangeGauges> {
        self.gauges.as_ref()
    }

    /// Record `rows` output rows.
    pub fn add_rows_out(&self, rows: u64) {
        self.rows_out.fetch_add(rows, Ordering::Relaxed);
    }

    /// Record `n` emitted batches (partition-producing operators).
    pub fn add_batches(&self, n: u64) {
        self.batches.fetch_add(n, Ordering::Relaxed);
    }

    /// Add wall time spent producing this node's output.
    pub fn add_wall(&self, d: Duration) {
        self.wall_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Fold a counter delta into this node (any thread may call this —
    /// per-thread workers report their [`StatsSnapshot`]s here).
    pub fn absorb_stats(&self, delta: &StatsSnapshot) {
        self.stats.absorb(delta);
    }

    /// Freeze this node (and its subtree) into a [`PlanProfile`].
    pub fn snapshot(&self) -> PlanProfile {
        PlanProfile {
            name: self.name.clone(),
            detail: self.detail.clone(),
            metrics: OpMetrics {
                rows_out: self.rows_out.load(Ordering::Relaxed),
                batches: self.batches.load(Ordering::Relaxed),
                wall: Duration::from_nanos(self.wall_ns.load(Ordering::Relaxed)),
                stats: self.stats.snapshot(),
            },
            gauges: self
                .gauges
                .as_ref()
                .map(|g| g.snapshot())
                .unwrap_or_default(),
            children: self.children.iter().map(|c| c.snapshot()).collect(),
        }
    }
}

/// Per-channel counters of one threaded-exchange edge: producer-side
/// send waits, consumer-side receive waits, and queue occupancy.
///
/// "Wait" times are wall time spent inside the blocking `send`/`recv`
/// call — when a channel is never full/empty these stay near zero, and a
/// partition whose consumer lags shows up as producer send wait (the
/// backpressure the bounded channel exists to apply).
#[derive(Debug, Default)]
pub struct ChannelGauge {
    send_wait_ns: AtomicU64,
    recv_wait_ns: AtomicU64,
    /// Rows sent (monotonic).  A batched exchange counts every row a
    /// batch carries, so `rows` always means rows crossed, never
    /// messages.
    rows_sent: AtomicU64,
    /// Messages enqueued (monotonic — one per send: a row in a
    /// row-at-a-time exchange, a whole batch in a batched one).
    /// Occupancy is `msgs_sent - msgs_received`, which cannot drift the
    /// way a single racing up/down counter can.
    msgs_sent: AtomicU64,
    /// Messages dequeued (monotonic).
    msgs_received: AtomicU64,
    peak_depth: AtomicU64,
}

impl ChannelGauge {
    /// Record one enqueued row and the time spent blocked in `send`,
    /// raising the occupancy high-water mark if needed.  Call *after*
    /// the send returns (the row is then in the channel).
    pub fn note_send(&self, wait: Duration) {
        self.note_send_rows(wait, 1);
    }

    /// Record one enqueued **batch** carrying `rows` rows: the row
    /// counter grows by `rows` (gauges account rows crossed, not
    /// messages), occupancy grows by one message — a `sync_channel`
    /// bounds messages, so `peak_depth` stays comparable to the channel
    /// capacity whatever the batch size.
    pub fn note_send_rows(&self, wait: Duration, rows: u64) {
        self.send_wait_ns
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
        self.rows_sent.fetch_add(rows, Ordering::Relaxed);
        let sent = self.msgs_sent.fetch_add(1, Ordering::Relaxed) + 1;
        let received = self.msgs_received.load(Ordering::Relaxed);
        // Both counters only grow, so the difference cannot drift; the
        // consumer bumps `msgs_received` just after its `recv` returns,
        // so the observed occupancy may exceed the channel bound by the
        // one message in flight on the consumer side (gauges are
        // statistics, not synchronization).
        self.peak_depth
            .fetch_max(sent.saturating_sub(received), Ordering::Relaxed);
    }

    /// Record time spent blocked in `recv`, and the dequeue itself.
    /// `got_row` distinguishes a delivered row from a closed channel.
    pub fn note_recv(&self, wait: Duration, got_row: bool) {
        self.note_recv_rows(wait, got_row.then_some(1));
    }

    /// Record a batched dequeue: `rows` is the delivered batch's row
    /// count, or `None` for a closed channel (wait still accrues).
    pub fn note_recv_rows(&self, wait: Duration, rows: Option<u64>) {
        self.recv_wait_ns
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
        if rows.is_some() {
            self.msgs_received.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Freeze into an owned snapshot.
    pub fn snapshot(&self) -> ChannelGaugeSnapshot {
        ChannelGaugeSnapshot {
            send_wait: Duration::from_nanos(self.send_wait_ns.load(Ordering::Relaxed)),
            recv_wait: Duration::from_nanos(self.recv_wait_ns.load(Ordering::Relaxed)),
            rows: self.rows_sent.load(Ordering::Relaxed),
            peak_depth: self.peak_depth.load(Ordering::Relaxed),
        }
    }
}

/// Frozen [`ChannelGauge`] values for one exchange channel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelGaugeSnapshot {
    /// Total producer time blocked sending into this channel.
    pub send_wait: Duration,
    /// Total consumer time blocked receiving from this channel.
    pub recv_wait: Duration,
    /// Rows that crossed the channel (every row of every batch, for a
    /// batched exchange — never a message count).
    pub rows: u64,
    /// Peak queue occupancy observed, in **messages** (single rows for a
    /// row-at-a-time exchange, whole batches for a batched one — the
    /// unit a `sync_channel` capacity bounds; may read one above the
    /// channel bound for the message in flight on the consumer side).
    pub peak_depth: u64,
}

/// One [`ChannelGauge`] per partition of a threaded exchange.
#[derive(Debug, Default)]
pub struct ExchangeGauges {
    channels: Vec<Arc<ChannelGauge>>,
}

impl ExchangeGauges {
    /// Gauges for `channels` partitions.
    pub fn new(channels: usize) -> ExchangeGauges {
        ExchangeGauges {
            channels: (0..channels).map(|_| Arc::default()).collect(),
        }
    }

    /// The gauge of partition `p` (shared handle, safe to move into a
    /// worker thread).  Panics if `p` is out of range.
    pub fn channel(&self, p: usize) -> Arc<ChannelGauge> {
        Arc::clone(&self.channels[p])
    }

    /// Number of gauged channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Are there no gauged channels?
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Freeze every channel.
    pub fn snapshot(&self) -> Vec<ChannelGaugeSnapshot> {
        self.channels.iter().map(|c| c.snapshot()).collect()
    }
}

/// The frozen profile of one plan run: a tree of [`OpMetrics`] mirroring
/// the physical plan's shape, plus per-channel exchange gauges where the
/// plan moved data between threads.
#[derive(Clone, Debug)]
pub struct PlanProfile {
    /// Operator name.
    pub name: String,
    /// Operator detail (as rendered by `EXPLAIN`).
    pub detail: String,
    /// Measured counters, inclusive of the subtree.
    pub metrics: OpMetrics,
    /// Per-partition exchange gauges (empty for non-exchange operators).
    pub gauges: Vec<ChannelGaugeSnapshot>,
    /// Child profiles, in plan child order.
    pub children: Vec<PlanProfile>,
}

impl PlanProfile {
    /// Rows flowing *into* this operator: the sum of its children's
    /// output rows (0 for leaves — scans read storage, not a child).
    pub fn rows_in(&self) -> u64 {
        self.children.iter().map(|c| c.metrics.rows_out).sum()
    }

    /// All nodes of the profile, preorder (matches
    /// `PhysicalPlan::nodes()` order for the mirrored plan).
    pub fn nodes(&self) -> Vec<&PlanProfile> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.nodes());
        }
        out
    }

    /// Find the first node with the given operator name, preorder.
    pub fn find(&self, name: &str) -> Option<&PlanProfile> {
        self.nodes().into_iter().find(|n| n.name == name)
    }

    /// Render the profile tree alone (without plan estimates — the
    /// executor's `explain_analyze` interleaves both).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let m = &self.metrics;
        let _ = writeln!(
            out,
            "{pad}{}{}  [rows out={}, wall={:.3?}, col cmps={}, code cmps={}]",
            self.name,
            self.detail,
            m.rows_out,
            m.wall,
            m.col_cmps(),
            m.code_resolved_cmps(),
        );
        for (p, g) in self.gauges.iter().enumerate() {
            let _ = writeln!(
                out,
                "{pad}  ~ channel {p}: rows={}, send wait={:.3?}, recv wait={:.3?}, peak depth={}",
                g.rows, g.send_wait, g.recv_wait, g.peak_depth
            );
        }
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_accumulates_and_snapshots() {
        let child = Arc::new(ProfileNode::new("ScanCoded", " t1", vec![]));
        child.add_rows_out(10);
        let node = Arc::new(ProfileNode::new("SortOvc", " key=[c0 asc]", vec![child]));
        node.add_rows_out(7);
        node.add_wall(Duration::from_millis(3));
        node.add_wall(Duration::from_millis(2));
        let delta = StatsSnapshot {
            col_value_cmps: 4,
            ovc_cmps: 9,
            ..StatsSnapshot::default()
        };
        node.absorb_stats(&delta);

        let p = node.snapshot();
        assert_eq!(p.name, "SortOvc");
        assert_eq!(p.metrics.rows_out, 7);
        assert_eq!(p.metrics.wall, Duration::from_millis(5));
        assert_eq!(p.metrics.col_cmps(), 4);
        assert_eq!(p.metrics.code_resolved_cmps(), 9);
        assert_eq!(p.rows_in(), 10, "rows in = children's rows out");
        assert_eq!(p.nodes().len(), 2);
        assert_eq!(p.find("ScanCoded").unwrap().metrics.rows_out, 10);
        let text = p.render();
        assert!(text.contains("SortOvc key=[c0 asc]"), "{text}");
        assert!(text.contains("rows out=7"), "{text}");
    }

    #[test]
    fn workers_report_into_one_node_across_threads() {
        let node = Arc::new(ProfileNode::new("Exchange", " -> single", vec![]));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let n = Arc::clone(&node);
                std::thread::spawn(move || {
                    n.add_rows_out(5);
                    n.absorb_stats(&StatsSnapshot {
                        ovc_cmps: 2,
                        ..StatsSnapshot::default()
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let p = node.snapshot();
        assert_eq!(p.metrics.rows_out, 20);
        assert_eq!(p.metrics.code_resolved_cmps(), 8);
    }

    #[test]
    fn channel_gauges_track_waits_and_occupancy() {
        let g = ExchangeGauges::new(2);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        let c0 = g.channel(0);
        c0.note_send(Duration::from_micros(5));
        c0.note_send(Duration::from_micros(5));
        // Two rows enqueued, none dequeued yet: peak depth 2.
        c0.note_recv(Duration::from_micros(1), true);
        c0.note_recv(Duration::from_micros(1), true);
        // A recv on the closed/empty channel counts wait, not depth.
        c0.note_recv(Duration::from_micros(1), false);
        let snap = g.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].rows, 2);
        assert_eq!(snap[0].peak_depth, 2);
        assert_eq!(snap[0].send_wait, Duration::from_micros(10));
        assert_eq!(snap[0].recv_wait, Duration::from_micros(3));
        assert_eq!(snap[1], ChannelGaugeSnapshot::default());
    }

    #[test]
    fn batched_sends_count_rows_but_bound_depth_by_messages() {
        // Satellite contract: a batched exchange's gauge counts rows
        // crossed (not batches), while peak_depth — measured in queued
        // messages, the unit a sync_channel capacity bounds — never
        // exceeds capacity + 1 (the one message in flight on the
        // consumer side).
        let capacity = 4;
        let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(capacity);
        let g = ExchangeGauges::new(1);
        let c = g.channel(0);
        let producer = {
            let c = g.channel(0);
            std::thread::spawn(move || {
                for batch_rows in [100u64, 1, 57, 3, 1024, 9, 9, 9, 300, 2] {
                    let t0 = std::time::Instant::now();
                    tx.send(batch_rows).unwrap();
                    c.note_send_rows(t0.elapsed(), batch_rows);
                }
            })
        };
        let mut total = 0u64;
        loop {
            let t0 = std::time::Instant::now();
            match rx.recv() {
                Ok(batch_rows) => {
                    c.note_recv_rows(t0.elapsed(), Some(batch_rows));
                    total += batch_rows;
                }
                Err(_) => {
                    c.note_recv_rows(t0.elapsed(), None);
                    break;
                }
            }
        }
        producer.join().unwrap();
        let snap = g.snapshot();
        assert_eq!(snap[0].rows, total, "gauges count rows, not batches");
        assert_eq!(snap[0].rows, 100 + 1 + 57 + 3 + 1024 + 9 + 9 + 9 + 300 + 2);
        assert!(
            snap[0].peak_depth <= capacity as u64 + 1,
            "depth is bounded by the channel's message capacity: {snap:?}"
        );
        assert!(snap[0].peak_depth >= 1);
    }

    #[test]
    fn gauges_survive_cross_thread_reporting() {
        let g = ExchangeGauges::new(1);
        let c = g.channel(0);
        std::thread::spawn(move || {
            for _ in 0..100 {
                c.note_send(Duration::from_nanos(10));
            }
        })
        .join()
        .unwrap();
        let snap = g.snapshot();
        assert_eq!(snap[0].rows, 100);
        assert!(snap[0].peak_depth >= 1);
    }
}
