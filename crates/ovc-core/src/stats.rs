//! Comparison and I/O accounting.
//!
//! The paper's central efficiency claims are about *counts*: column-value
//! comparisons are bounded by `N × K` with no `log N` factor (Section 3),
//! and the sort-based plan of Figure 6 spills each row once where the
//! hash-based plan spills many rows twice.  These counters make those
//! claims measurable independent of wall-clock noise; EXPERIMENTS.md and
//! the `ablation_counters` bench are driven by them.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters for one pipeline of execution.  Operators hold an
/// `Arc<Stats>` along a pipeline; the counters are relaxed atomics, so a
/// `Stats` is `Send + Sync` and a whole pipeline — plan handle, operator
/// stack, output stream — can move to a connection-handler thread and
/// execute there (the `ovc-server` deployment shape).  Parallel
/// components (the threaded exchange, parallel run generation) still
/// have two merge paths:
///
/// * **per-thread `Stats`** — each worker creates its own `Stats`, and the
///   coordinator merges [`StatsSnapshot`]s with [`Stats::absorb`] after
///   joining (zero contention; the default choice);
/// * **shared `Arc<Stats>`/[`AtomicStats`]** — one accumulator shared
///   across workers when they must publish counters while still running.
///
/// Both merge paths preserve the accounting exactly — every worker's
/// counts land in the coordinator's totals, nothing lost or
/// double-counted.  Relaxed ordering is sufficient: counters are
/// statistics, not synchronization.
#[derive(Default)]
pub struct Stats {
    col_value_cmps: AtomicU64,
    ovc_cmps: AtomicU64,
    row_cmps: AtomicU64,
    rows_spilled: AtomicU64,
    bytes_spilled: AtomicU64,
    rows_read_back: AtomicU64,
    bytes_read_back: AtomicU64,
}

impl Stats {
    /// Fresh zeroed counters behind an `Arc` (the common way operators
    /// share them along a pipeline, and the handle that crosses threads).
    pub fn new_shared() -> Arc<Stats> {
        Arc::new(Stats::default())
    }

    /// Count one column-value comparison (the expensive kind the paper
    /// bounds by `N × K`).
    #[inline]
    pub fn count_col_cmp(&self) {
        self.col_value_cmps.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` column-value comparisons at once.
    #[inline]
    pub fn count_col_cmps(&self, n: u64) {
        self.col_value_cmps.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one offset-value-code comparison (a single integer compare;
    /// the paper argues these are practically free).
    #[inline]
    pub fn count_ovc_cmp(&self) {
        self.ovc_cmps.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one full row comparison (baseline algorithms).
    #[inline]
    pub fn count_row_cmp(&self) {
        self.row_cmps.fetch_add(1, Ordering::Relaxed);
    }

    /// Account rows and bytes written to spill storage.
    #[inline]
    pub fn count_spill(&self, rows: u64, bytes: u64) {
        self.rows_spilled.fetch_add(rows, Ordering::Relaxed);
        self.bytes_spilled.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Account rows and bytes read back from spill storage.
    #[inline]
    pub fn count_read_back(&self, rows: u64, bytes: u64) {
        self.rows_read_back.fetch_add(rows, Ordering::Relaxed);
        self.bytes_read_back.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Total column-value comparisons so far.
    pub fn col_value_cmps(&self) -> u64 {
        self.col_value_cmps.load(Ordering::Relaxed)
    }

    /// Total offset-value-code comparisons so far.
    pub fn ovc_cmps(&self) -> u64 {
        self.ovc_cmps.load(Ordering::Relaxed)
    }

    /// Total full row comparisons so far.
    pub fn row_cmps(&self) -> u64 {
        self.row_cmps.load(Ordering::Relaxed)
    }

    /// Total rows spilled so far.
    pub fn rows_spilled(&self) -> u64 {
        self.rows_spilled.load(Ordering::Relaxed)
    }

    /// Total bytes spilled so far.
    pub fn bytes_spilled(&self) -> u64 {
        self.bytes_spilled.load(Ordering::Relaxed)
    }

    /// Total rows read back from spill storage so far.
    pub fn rows_read_back(&self) -> u64 {
        self.rows_read_back.load(Ordering::Relaxed)
    }

    /// Total bytes read back from spill storage so far.
    pub fn bytes_read_back(&self) -> u64 {
        self.bytes_read_back.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.col_value_cmps.store(0, Ordering::Relaxed);
        self.ovc_cmps.store(0, Ordering::Relaxed);
        self.row_cmps.store(0, Ordering::Relaxed);
        self.rows_spilled.store(0, Ordering::Relaxed);
        self.bytes_spilled.store(0, Ordering::Relaxed);
        self.rows_read_back.store(0, Ordering::Relaxed);
        self.bytes_read_back.store(0, Ordering::Relaxed);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            col_value_cmps: self.col_value_cmps(),
            ovc_cmps: self.ovc_cmps(),
            row_cmps: self.row_cmps(),
            rows_spilled: self.rows_spilled(),
            bytes_spilled: self.bytes_spilled(),
            rows_read_back: self.rows_read_back(),
            bytes_read_back: self.bytes_read_back(),
        }
    }

    /// Add a snapshot (e.g. from another thread's `Stats`) into this one.
    pub fn absorb(&self, s: &StatsSnapshot) {
        self.count_col_cmps(s.col_value_cmps);
        self.ovc_cmps.fetch_add(s.ovc_cmps, Ordering::Relaxed);
        self.row_cmps.fetch_add(s.row_cmps, Ordering::Relaxed);
        self.count_spill(s.rows_spilled, s.bytes_spilled);
        self.count_read_back(s.rows_read_back, s.bytes_read_back);
    }
}

impl fmt::Debug for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// `Send + Sync` counters for cross-thread accounting (`AtomicU64`,
/// relaxed ordering — counters are statistics, not synchronization).
///
/// Worker threads that share one accumulator wrap it in an `Arc`; the
/// coordinator reads a [`StatsSnapshot`] after joining them and folds it
/// into its pipeline-local [`Stats`] with [`Stats::absorb`].
///
/// ```
/// use std::sync::Arc;
/// use ovc_core::{AtomicStats, Stats};
///
/// let shared = Arc::new(AtomicStats::default());
/// let worker = Arc::clone(&shared);
/// std::thread::spawn(move || worker.count_col_cmps(3)).join().unwrap();
///
/// let main = Stats::default();
/// main.absorb(&shared.snapshot());
/// assert_eq!(main.col_value_cmps(), 3);
/// ```
#[derive(Default)]
pub struct AtomicStats {
    col_value_cmps: AtomicU64,
    ovc_cmps: AtomicU64,
    row_cmps: AtomicU64,
    rows_spilled: AtomicU64,
    bytes_spilled: AtomicU64,
    rows_read_back: AtomicU64,
    bytes_read_back: AtomicU64,
}

impl AtomicStats {
    /// Count `n` column-value comparisons.
    #[inline]
    pub fn count_col_cmps(&self, n: u64) {
        self.col_value_cmps.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one offset-value-code comparison.
    #[inline]
    pub fn count_ovc_cmp(&self) {
        self.ovc_cmps.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one full row comparison.
    #[inline]
    pub fn count_row_cmp(&self) {
        self.row_cmps.fetch_add(1, Ordering::Relaxed);
    }

    /// Account rows and bytes written to spill storage.
    #[inline]
    pub fn count_spill(&self, rows: u64, bytes: u64) {
        self.rows_spilled.fetch_add(rows, Ordering::Relaxed);
        self.bytes_spilled.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Account rows and bytes read back from spill storage.
    #[inline]
    pub fn count_read_back(&self, rows: u64, bytes: u64) {
        self.rows_read_back.fetch_add(rows, Ordering::Relaxed);
        self.bytes_read_back.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Fold a finished worker's per-thread counters in.
    pub fn absorb(&self, s: &StatsSnapshot) {
        self.count_col_cmps(s.col_value_cmps);
        self.ovc_cmps.fetch_add(s.ovc_cmps, Ordering::Relaxed);
        self.row_cmps.fetch_add(s.row_cmps, Ordering::Relaxed);
        self.count_spill(s.rows_spilled, s.bytes_spilled);
        self.count_read_back(s.rows_read_back, s.bytes_read_back);
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            col_value_cmps: self.col_value_cmps.load(Ordering::Relaxed),
            ovc_cmps: self.ovc_cmps.load(Ordering::Relaxed),
            row_cmps: self.row_cmps.load(Ordering::Relaxed),
            rows_spilled: self.rows_spilled.load(Ordering::Relaxed),
            bytes_spilled: self.bytes_spilled.load(Ordering::Relaxed),
            rows_read_back: self.rows_read_back.load(Ordering::Relaxed),
            bytes_read_back: self.bytes_read_back.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for AtomicStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// An owned, sendable copy of counter values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Column-value comparisons.
    pub col_value_cmps: u64,
    /// Offset-value-code comparisons.
    pub ovc_cmps: u64,
    /// Full row comparisons.
    pub row_cmps: u64,
    /// Rows written to spill storage.
    pub rows_spilled: u64,
    /// Bytes written to spill storage.
    pub bytes_spilled: u64,
    /// Rows read back from spill storage.
    pub rows_read_back: u64,
    /// Bytes read back from spill storage.
    pub bytes_read_back: u64,
}

/// Weights folding the counter classes into one comparable scalar.
///
/// The planner's cost model (`ovc-plan`) *estimates* in these units and
/// [`StatsSnapshot::weighted_cost`] *measures* in them, so predicted and
/// observed plan costs live on the same scale.  The defaults encode the
/// paper's cost argument: an offset-value-code comparison is one integer
/// instruction (weight 1); a column-value comparison costs a few times
/// that (cache-missing column access); a full row comparison is a short
/// loop of column comparisons; and a spilled row costs two orders of
/// magnitude more than any comparison (serialization plus I/O), which is
/// why Figure 6 is about spill volume.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostWeights {
    /// Cost of one column-value comparison.
    pub col_cmp: f64,
    /// Cost of one offset-value-code comparison.
    pub ovc_cmp: f64,
    /// Cost of one full row comparison.
    pub row_cmp: f64,
    /// Cost of one row written to spill storage.
    pub spill_row: f64,
    /// Cost of one row read back from spill storage.
    pub read_row: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            col_cmp: 4.0,
            ovc_cmp: 1.0,
            row_cmp: 8.0,
            spill_row: 128.0,
            read_row: 64.0,
        }
    }
}

impl StatsSnapshot {
    /// Difference of two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            col_value_cmps: self.col_value_cmps - earlier.col_value_cmps,
            ovc_cmps: self.ovc_cmps - earlier.ovc_cmps,
            row_cmps: self.row_cmps - earlier.row_cmps,
            rows_spilled: self.rows_spilled - earlier.rows_spilled,
            bytes_spilled: self.bytes_spilled - earlier.bytes_spilled,
            rows_read_back: self.rows_read_back - earlier.rows_read_back,
            bytes_read_back: self.bytes_read_back - earlier.bytes_read_back,
        }
    }

    /// Accumulate another snapshot into this one field-wise (the owned
    /// counterpart of [`Stats::absorb`], used by profiling adapters that
    /// collect deltas locally before publishing them).
    pub fn add(&mut self, d: &StatsSnapshot) {
        self.col_value_cmps += d.col_value_cmps;
        self.ovc_cmps += d.ovc_cmps;
        self.row_cmps += d.row_cmps;
        self.rows_spilled += d.rows_spilled;
        self.bytes_spilled += d.bytes_spilled;
        self.rows_read_back += d.rows_read_back;
        self.bytes_read_back += d.bytes_read_back;
    }

    /// Fold the counters into one scalar under the given weights — the
    /// measured counterpart of the planner's estimated plan cost.
    pub fn weighted_cost(&self, w: &CostWeights) -> f64 {
        self.col_value_cmps as f64 * w.col_cmp
            + self.ovc_cmps as f64 * w.ovc_cmp
            + self.row_cmps as f64 * w.row_cmp
            + self.rows_spilled as f64 * w.spill_row
            + self.rows_read_back as f64 * w.read_row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::default();
        s.count_col_cmp();
        s.count_col_cmps(4);
        s.count_ovc_cmp();
        s.count_row_cmp();
        s.count_spill(10, 80);
        s.count_read_back(10, 80);
        assert_eq!(s.col_value_cmps(), 5);
        assert_eq!(s.ovc_cmps(), 1);
        assert_eq!(s.row_cmps(), 1);
        assert_eq!(s.rows_spilled(), 10);
        assert_eq!(s.bytes_spilled(), 80);
        assert_eq!(s.rows_read_back(), 10);
        assert_eq!(s.bytes_read_back(), 80);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = Stats::default();
        s.count_col_cmps(7);
        s.count_spill(1, 8);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn absorb_merges_snapshots() {
        let a = Stats::default();
        a.count_col_cmps(3);
        let b = Stats::default();
        b.count_col_cmps(4);
        b.count_ovc_cmp();
        a.absorb(&b.snapshot());
        assert_eq!(a.col_value_cmps(), 7);
        assert_eq!(a.ovc_cmps(), 1);
    }

    #[test]
    fn weighted_cost_combines_counter_classes() {
        let s = Stats::default();
        s.count_ovc_cmp();
        s.count_col_cmps(2);
        s.count_spill(1, 8);
        let w = CostWeights {
            col_cmp: 4.0,
            ovc_cmp: 1.0,
            row_cmp: 8.0,
            spill_row: 100.0,
            read_row: 50.0,
        };
        assert_eq!(s.snapshot().weighted_cost(&w), 1.0 + 8.0 + 100.0);
        // Spilling dominates comparisons under the default weights, the
        // premise of the paper's Figure 6 argument.
        let d = CostWeights::default();
        assert!(d.spill_row > 8.0 * d.col_cmp);
    }

    #[test]
    fn atomic_stats_accumulate_across_threads() {
        use std::sync::Arc;
        let shared = Arc::new(AtomicStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || {
                    s.count_col_cmps(10);
                    s.count_ovc_cmp();
                    s.count_spill(1, 8);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = shared.snapshot();
        assert_eq!(snap.col_value_cmps, 40);
        assert_eq!(snap.ovc_cmps, 4);
        assert_eq!(snap.rows_spilled, 4);
        assert_eq!(snap.bytes_spilled, 32);
        // Per-thread merge path: fold into a pipeline-local Stats.
        let local = Stats::default();
        local.absorb(&snap);
        assert_eq!(local.col_value_cmps(), 40);
        // And the atomic absorb hook mirrors Stats::absorb.
        let other = AtomicStats::default();
        other.count_row_cmp();
        shared.absorb(&other.snapshot());
        assert_eq!(shared.snapshot().row_cmps, 1);
    }

    #[test]
    fn snapshot_difference() {
        let s = Stats::default();
        s.count_col_cmps(5);
        let before = s.snapshot();
        s.count_col_cmps(2);
        s.count_spill(1, 16);
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.col_value_cmps, 2);
        assert_eq!(delta.rows_spilled, 1);
        assert_eq!(delta.bytes_spilled, 16);
    }
}
