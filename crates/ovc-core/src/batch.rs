//! Morsel-style batch-at-a-time streams of coded rows.
//!
//! The systems the paper builds its offset-value-coding argument on — F1
//! Query and Napa — run vectorized pipelines: operators hand each other
//! fixed-size batches, not single boxed rows.  This module is the batch
//! counterpart of [`crate::stream`]: a [`BatchStream`] yields
//! [`FlatRows`] batches (contiguous struct-of-arrays storage, one
//! `Vec<u64>` of values plus a parallel `Vec<Ovc>` of codes) under one
//! [`SortSpec`] ordering contract.
//!
//! **The seam rule (DESIGN.md §12).**  A batch stream carries the *same*
//! contract as a row stream, batched: concatenating all batches yields a
//! row sequence sorted under the stream's spec in which every code is
//! exact relative to the *previous row of the stream* — including across
//! batch boundaries.  The first code of batch `k+1` relates to the last
//! row of batch `k`; only the very first code of the whole stream is
//! relative to "−∞".  Cutting a coded stream into batches therefore
//! requires **no code repair at all** (codes are a function of the row
//! sequence, which batching does not change), and splicing batches back
//! into a row stream ([`BatchRows`]) is equally free.  Repair is only
//! needed when a batch is *lifted out* of its stream and treated as a
//! standalone sorted unit — [`repair_head`] re-bases its first code to
//! "−∞", and every later code stays exact because it never looks past
//! the batch's own previous row.
//!
//! Validation mirrors the row-stream helpers:
//! [`find_code_violation_batches`] / [`assert_batches_exact_spec`] audit
//! a batch sequence *including its seams*.

use crate::derive::find_code_violation_slices;
use crate::flat::FlatRows;
use crate::row::Row;
use crate::spec::SortSpec;
use crate::stream::{OvcRow, OvcStream};

/// A sorted stream of coded rows delivered batch-at-a-time.
///
/// Contract: concatenating every yielded batch gives a row sequence that
/// satisfies the row-stream contract under [`BatchStream::sort_spec`] —
/// rows ordered by the spec, each code exact relative to the stream's
/// previous row, seams included (see the module docs).  Batch sizes are
/// an upper bound chosen by the producer: operators may emit shorter
/// batches (a filter that dropped rows, a flush at end of input), and a
/// batch is never empty.
pub trait BatchStream {
    /// The next batch, or `None` at end of stream.  Yielded batches are
    /// non-empty.
    fn next_batch(&mut self) -> Option<FlatRows>;

    /// The ordering contract the concatenated rows and codes follow.
    fn sort_spec(&self) -> SortSpec;

    /// Number of leading sort-key columns (the code arity).
    fn key_len(&self) -> usize {
        self.sort_spec().len()
    }
}

impl<B: BatchStream + ?Sized> BatchStream for Box<B> {
    fn next_batch(&mut self) -> Option<FlatRows> {
        (**self).next_batch()
    }
    fn sort_spec(&self) -> SortSpec {
        (**self).sort_spec()
    }
    fn key_len(&self) -> usize {
        (**self).key_len()
    }
}

/// Cut a row stream into fixed-size batches.
///
/// Codes pass through untouched: the stream contract already makes every
/// code exact relative to the previous row, and batching does not change
/// the row sequence, so the seam rule holds by construction.
pub struct Batcher<S: OvcStream> {
    input: S,
    spec: SortSpec,
    batch_size: usize,
}

impl<S: OvcStream> Batcher<S> {
    /// Batch `input` into chunks of at most `batch_size` rows.  Panics if
    /// `batch_size` is zero.
    pub fn new(input: S, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let spec = input.sort_spec();
        Batcher {
            input,
            spec,
            batch_size,
        }
    }
}

impl<S: OvcStream> BatchStream for Batcher<S> {
    fn next_batch(&mut self) -> Option<FlatRows> {
        let OvcRow { row, code } = self.input.next()?;
        let mut flat = FlatRows::with_capacity(row.width(), self.batch_size);
        flat.push(row.cols(), code);
        while flat.len() < self.batch_size {
            match self.input.next() {
                Some(OvcRow { row, code }) => flat.push(row.cols(), code),
                None => break,
            }
        }
        Some(flat)
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// Splice a batch stream back into a row stream (the inverse of
/// [`Batcher`]): rows materialize lazily, one boxed [`OvcRow`] per
/// `next()`, straight from the current batch's contiguous buffer.
pub struct BatchRows<B: BatchStream> {
    input: B,
    spec: SortSpec,
    cur: Option<FlatRows>,
    pos: usize,
}

impl<B: BatchStream> BatchRows<B> {
    /// Stream the rows of `input` one at a time.
    pub fn new(input: B) -> Self {
        let spec = input.sort_spec();
        BatchRows {
            input,
            spec,
            cur: None,
            pos: 0,
        }
    }
}

impl<B: BatchStream> Iterator for BatchRows<B> {
    type Item = OvcRow;
    fn next(&mut self) -> Option<OvcRow> {
        loop {
            if let Some(cur) = &self.cur {
                if self.pos < cur.len() {
                    let r = OvcRow::new(Row::from_slice(cur.row(self.pos)), cur.code(self.pos));
                    self.pos += 1;
                    return Some(r);
                }
            }
            self.cur = Some(self.input.next_batch()?);
            self.pos = 0;
        }
    }
}

impl<B: BatchStream> OvcStream for BatchRows<B> {
    fn key_len(&self) -> usize {
        self.spec.len()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// An in-memory batch stream over pre-cut batches (tests, rewrapping
/// materialized partitions).
pub struct VecBatchStream {
    batches: std::vec::IntoIter<FlatRows>,
    spec: SortSpec,
}

impl VecBatchStream {
    /// Wrap already-coded batches.  Debug builds verify the full batched
    /// contract, seams included; empty batches are dropped.
    pub fn new(batches: Vec<FlatRows>, spec: SortSpec) -> Self {
        #[cfg(debug_assertions)]
        {
            if let Some(i) = find_code_violation_batches(&batches, &spec) {
                panic!("VecBatchStream::new: code violation at stream row {i} under {spec}");
            }
        }
        let batches: Vec<FlatRows> = batches.into_iter().filter(|b| !b.is_empty()).collect();
        VecBatchStream {
            batches: batches.into_iter(),
            spec,
        }
    }
}

impl BatchStream for VecBatchStream {
    fn next_batch(&mut self) -> Option<FlatRows> {
        self.batches.next()
    }
    fn sort_spec(&self) -> SortSpec {
        self.spec.clone()
    }
}

/// Audit a batch sequence against the batched stream contract under
/// `spec`, **seams included**: the concatenated rows must be ordered by
/// the spec and every code exact relative to the stream's previous row
/// (batch `k+1`'s first code checked against batch `k`'s last row; the
/// stream's very first code against "−∞").  Returns the index of the
/// first offending row in concatenated order.
pub fn find_code_violation_batches(batches: &[FlatRows], spec: &SortSpec) -> Option<usize> {
    find_code_violation_slices(batches.iter().flat_map(|b| b.iter()), spec)
}

/// Panic unless the batch sequence satisfies the batched stream contract
/// under `spec` (the batched counterpart of
/// [`crate::derive::assert_codes_exact_spec`]).
pub fn assert_batches_exact_spec(batches: &[FlatRows], spec: &SortSpec) {
    if let Some(i) = find_code_violation_batches(batches, spec) {
        panic!("batched code violation at stream row {i} under {spec}");
    }
}

/// Promote a mid-stream batch to a standalone sorted unit: re-base its
/// first code to "−∞" under `spec`.
///
/// This is the whole batch-seam repair rule: a batch cut from a coded
/// stream is internally exact from its second row on (those codes never
/// look past the batch's own previous row), and only the head code
/// references the previous batch's last row.  After `repair_head` the
/// batch satisfies the standalone contract checked by
/// [`crate::CodedBatch::from_flat`].  No-op on empty batches.
pub fn repair_head(flat: &mut FlatRows, spec: &SortSpec) {
    if !flat.is_empty() {
        let code = spec.initial_code(&flat.row(0)[..spec.len()]);
        flat.set_code(0, code);
    }
}

/// Drain a batch stream into `(Row, Ovc)` pairs (test convenience).
pub fn collect_batch_pairs<B: BatchStream>(stream: B) -> Vec<(Row, crate::Ovc)> {
    BatchRows::new(stream).map(|r| (r.row, r.code)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{collect_pairs, VecStream};
    use crate::Ovc;

    fn table1_stream() -> VecStream {
        VecStream::from_sorted_rows(crate::table1::rows(), 4)
    }

    #[test]
    fn batcher_round_trips_for_every_batch_size() {
        let reference = collect_pairs(table1_stream());
        for batch_size in [1usize, 2, 3, 7, 64] {
            let mut batcher = Batcher::new(table1_stream(), batch_size);
            assert_eq!(batcher.sort_spec(), SortSpec::asc(4));
            assert_eq!(batcher.key_len(), 4);
            let mut batches = Vec::new();
            while let Some(b) = batcher.next_batch() {
                assert!(!b.is_empty());
                assert!(b.len() <= batch_size);
                batches.push(b);
            }
            assert_batches_exact_spec(&batches, &SortSpec::asc(4));
            let spliced = collect_pairs(BatchRows::new(VecBatchStream::new(
                batches,
                SortSpec::asc(4),
            )));
            assert_eq!(spliced, reference, "batch_size={batch_size}");
        }
    }

    #[test]
    fn boxed_batch_streams_forward_the_contract() {
        let mut boxed: Box<dyn BatchStream> = Box::new(Batcher::new(table1_stream(), 3));
        assert_eq!(boxed.key_len(), 4);
        let first = boxed.next_batch().expect("first batch");
        assert_eq!(first.len(), 3);
    }

    #[test]
    fn empty_stream_yields_no_batches() {
        let mut b = Batcher::new(VecStream::from_sorted_rows(vec![], 2), 8);
        assert!(b.next_batch().is_none());
        assert_eq!(
            collect_batch_pairs(Batcher::new(VecStream::from_sorted_rows(vec![], 2), 8)).len(),
            0
        );
    }

    #[test]
    fn seam_validation_catches_a_bad_head_code() {
        let mut batcher = Batcher::new(table1_stream(), 3);
        let mut batches = Vec::new();
        while let Some(b) = batcher.next_batch() {
            batches.push(b);
        }
        // Corrupt the second batch's head: pretend it starts a stream.
        repair_head(&mut batches[1], &SortSpec::asc(4));
        let i = find_code_violation_batches(&batches, &SortSpec::asc(4));
        assert_eq!(i, Some(3), "the repaired head no longer matches the seam");
    }

    #[test]
    fn repair_head_makes_a_mid_stream_batch_standalone() {
        let mut batcher = Batcher::new(table1_stream(), 3);
        let _ = batcher.next_batch();
        let mut mid = batcher.next_batch().expect("second batch");
        repair_head(&mut mid, &SortSpec::asc(4));
        // The standalone contract (first code relative to −∞) now holds.
        let _ = crate::CodedBatch::from_flat(mid, SortSpec::asc(4));
    }

    #[test]
    fn spec_streams_batch_with_their_contract() {
        use crate::spec::Direction;
        let spec = SortSpec::with_dirs(&[Direction::Desc, Direction::Asc]);
        let rows: Vec<Row> = [[9u64, 1], [9, 5], [2, 0], [2, 4]]
            .iter()
            .map(|c| Row::new(c.to_vec()))
            .collect();
        let mut b = Batcher::new(VecStream::from_sorted_rows_spec(rows, spec.clone()), 2);
        assert_eq!(b.sort_spec(), spec);
        let mut batches = Vec::new();
        while let Some(batch) = b.next_batch() {
            batches.push(batch);
        }
        assert_eq!(batches.len(), 2);
        assert_batches_exact_spec(&batches, &spec);
    }

    #[test]
    fn zero_batch_size_is_rejected() {
        let r = std::panic::catch_unwind(|| Batcher::new(table1_stream(), 0));
        assert!(r.is_err());
    }

    #[test]
    fn duplicate_codes_survive_batch_seams() {
        // A run of equal rows spanning a seam keeps its duplicate codes.
        let rows: Vec<Row> = vec![
            Row::new(vec![1]),
            Row::new(vec![1]),
            Row::new(vec![1]),
            Row::new(vec![2]),
        ];
        let mut b = Batcher::new(VecStream::from_sorted_rows(rows, 1), 2);
        let first = b.next_batch().unwrap();
        let second = b.next_batch().unwrap();
        assert!(first.code(1).is_duplicate());
        assert!(second.code(0).is_duplicate(), "the seam code stays exact");
        assert_eq!(second.code(1), Ovc::new(0, 2, 1));
        assert_batches_exact_spec(&[first, second], &SortSpec::asc(1));
    }
}
