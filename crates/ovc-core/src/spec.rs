//! Sort specifications: the ordering contract a coded stream carries.
//!
//! The paper treats three code families as one mechanism under different
//! encodings: ascending codes (Section 3, [`crate::ovc`]), descending
//! codes with negated values (Table 1, [`crate::desc`]), and byte-offset
//! codes over normalized keys (Sections 3 and 4.1, [`crate::normalized`]).
//! A [`SortSpec`] names which of those encodings a stream's order uses —
//! an ordered list of `(column, Direction)` pairs plus an optional
//! normalized-key flag — and supplies the direction-aware primitives
//! (`cmp_values`, `code_value`, `initial_code`) that let the *ascending*
//! 64-bit [`Ovc`] layout carry mixed ascending/descending keys:
//!
//! * the offset field is direction-independent (a shared prefix is a
//!   shared prefix either way), and
//! * a descending column stores its value **negated**
//!   (`VALUE_MASK − value`, exactly the [`crate::desc::DescOvc`] trick
//!   applied per column), so "smaller code = earlier" keeps holding and
//!   one unsigned integer comparison still orders two same-base codes.
//!
//! Everything downstream — tree-of-losers merges, run generation, merge
//! join, the planner's property matching — takes a `SortSpec` instead of
//! a bare column-prefix count.

use std::cmp::Ordering;
use std::fmt;

use crate::ovc::{clamp_value, Ovc, VALUE_MASK};
use crate::row::{Row, Value};

/// Per-column sort direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Smaller values first (the paper's default throughout).
    Asc,
    /// Larger values first (Table 1's "Descending OVC" column).
    Desc,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Asc => Direction::Desc,
            Direction::Desc => Direction::Asc,
        }
    }

    /// Lower-case name, as printed in EXPLAIN output.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Asc => "asc",
            Direction::Desc => "desc",
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An ordering contract: `(column, Direction)` pairs in significance
/// order, plus an optional normalized-key encoding flag.
///
/// The empty spec means "no ordering".  Specs whose columns are the
/// leading prefix `0, 1, …, k−1` (see [`SortSpec::is_prefix`]) are the
/// ones execution operators accept — rows travel with their sort key in
/// front throughout this repository — while the general form exists so
/// planner-level reasoning (projection column maps, future index specs)
/// is not artificially restricted.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SortSpec {
    keys: Vec<(usize, Direction)>,
    normalized: bool,
}

impl SortSpec {
    /// A spec from explicit `(column, Direction)` pairs.
    pub fn new(keys: Vec<(usize, Direction)>) -> SortSpec {
        SortSpec {
            keys,
            normalized: false,
        }
    }

    /// The empty spec: no ordering guarantee.
    pub fn none() -> SortSpec {
        SortSpec::new(Vec::new())
    }

    /// Ascending on the leading `n` columns — the contract every
    /// pre-`SortSpec` operator in this repository assumed implicitly.
    pub fn asc(n: usize) -> SortSpec {
        SortSpec::new((0..n).map(|c| (c, Direction::Asc)).collect())
    }

    /// Descending on the leading `n` columns.
    pub fn desc(n: usize) -> SortSpec {
        SortSpec::new((0..n).map(|c| (c, Direction::Desc)).collect())
    }

    /// Leading columns with the given per-column directions.
    pub fn with_dirs(dirs: &[Direction]) -> SortSpec {
        SortSpec::new(dirs.iter().copied().enumerate().collect())
    }

    /// Request (or clear) normalized-key encoding: run generation compares
    /// order-preserving byte strings ([`crate::normalized::normalize`]
    /// extended with per-column direction complements) instead of column
    /// values — the IBM CFC regime of Section 3.
    pub fn with_normalized(mut self, normalized: bool) -> SortSpec {
        self.normalized = normalized;
        self
    }

    /// Is normalized-key encoding requested?
    pub fn normalized(&self) -> bool {
        self.normalized
    }

    /// The `(column, Direction)` pairs in significance order.
    pub fn keys(&self) -> &[(usize, Direction)] {
        &self.keys
    }

    /// Number of key columns (the code arity).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Is this the empty (no-ordering) spec?
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Column index of the `i`-th key.
    pub fn col(&self, i: usize) -> usize {
        self.keys[i].0
    }

    /// Direction of the `i`-th key.
    pub fn dir(&self, i: usize) -> Direction {
        self.keys[i].1
    }

    /// Do the keys name the leading columns `0, 1, …, len−1` in order?
    /// Execution operators require this (rows carry their sort key as a
    /// leading prefix); the planner rejects non-prefix specs with a
    /// schema error instead of panicking.
    pub fn is_prefix(&self) -> bool {
        self.keys.iter().enumerate().all(|(i, &(c, _))| c == i)
    }

    /// Is this an all-ascending leading-prefix spec (the fast path every
    /// pre-`SortSpec` operator implemented)?
    pub fn is_asc_prefix(&self) -> bool {
        self.is_prefix() && self.keys.iter().all(|&(_, d)| d == Direction::Asc)
    }

    /// The first `n` keys as a spec (normalized flag preserved).
    pub fn prefix(&self, n: usize) -> SortSpec {
        SortSpec {
            keys: self.keys[..n.min(self.keys.len())].to_vec(),
            normalized: self.normalized,
        }
    }

    /// Every direction flipped: the spec a reversed stream satisfies.
    pub fn reversed(&self) -> SortSpec {
        SortSpec {
            keys: self.keys.iter().map(|&(c, d)| (c, d.reversed())).collect(),
            normalized: self.normalized,
        }
    }

    /// Does an output ordered by `self` satisfy `required`?  True when
    /// `required`'s keys are a `(column, Direction)`-exact prefix of
    /// `self`'s (the normalized flag is an encoding hint, not part of the
    /// ordering semantics, so it does not participate).
    pub fn satisfies(&self, required: &SortSpec) -> bool {
        required.len() <= self.len() && self.keys[..required.len()] == required.keys[..]
    }

    /// Compare two values of the `i`-th key column under its direction.
    #[inline]
    pub fn cmp_values(&self, i: usize, a: Value, b: Value) -> Ordering {
        match self.dir(i) {
            Direction::Asc => a.cmp(&b),
            Direction::Desc => b.cmp(&a),
        }
    }

    /// Compare two key slices laid out in spec order (element `i` is the
    /// `i`-th key column of each row).
    pub fn cmp_keys(&self, a: &[Value], b: &[Value]) -> Ordering {
        for i in 0..self.len() {
            match self.cmp_values(i, a[i], b[i]) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// Compare two whole rows, indexing each key's column (supports
    /// non-prefix specs).
    pub fn cmp_rows(&self, a: &Row, b: &Row) -> Ordering {
        for i in 0..self.len() {
            let c = self.col(i);
            match self.cmp_values(i, a.cols()[c], b.cols()[c]) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// The value stored in a code's value field for key `i`: the clamped
    /// value for ascending columns, its complement for descending ones —
    /// keeping "smaller code = earlier" true in both directions.
    #[inline]
    pub fn code_value(&self, i: usize, v: Value) -> u64 {
        match self.dir(i) {
            Direction::Asc => clamp_value(v),
            Direction::Desc => VALUE_MASK - clamp_value(v),
        }
    }

    /// Code of a stream's first key relative to "−∞": offset 0, the first
    /// key column's (direction-encoded) value.
    pub fn initial_code(&self, key: &[Value]) -> Ovc {
        if self.is_empty() || key.is_empty() {
            Ovc::duplicate()
        } else {
            Ovc::new(0, self.code_value(0, key[0]), self.len())
        }
    }

    /// First key index at which column comparisons must resume after two
    /// *equal* codes (the spec-aware version of [`Ovc::resume_column`]).
    ///
    /// Clamping loses information at the saturated end of the value field
    /// — `VALUE_MASK` for ascending columns, but `0` for descending ones
    /// (large values complement to small fields) — so the lossy check is
    /// direction-dependent: equal lossy codes may hide a difference at
    /// the offset column itself.
    #[inline]
    pub fn resume_key(&self, code: Ovc) -> usize {
        let off = code.offset(self.len());
        let lossy = match self.dir(off) {
            Direction::Asc => code.value() == VALUE_MASK,
            Direction::Desc => code.value() == 0,
        };
        if lossy {
            off
        } else {
            off + 1
        }
    }

    /// Order-preserving byte string of a key slice in spec order:
    /// big-endian column concatenation with descending columns
    /// complemented, so bytewise ascending comparison equals spec order
    /// (the normalized-key regime of [`crate::normalized`]).
    pub fn normalize_key(&self, key: &[Value]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len() * 8);
        for (i, &k) in key.iter().enumerate().take(self.len()) {
            let v = match self.dir(i) {
                Direction::Asc => k,
                Direction::Desc => !k,
            };
            out.extend_from_slice(&v.to_be_bytes());
        }
        out
    }
}

impl fmt::Display for SortSpec {
    /// Renders as `[c0 asc, c1 desc]` (with ` norm` appended when
    /// normalized-key encoding is requested), or `none` when empty.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        f.write_str("[")?;
        for (i, &(c, d)) in self.keys.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "c{c} {d}")?;
        }
        f.write_str("]")?;
        if self.normalized {
            f.write_str(" norm")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let s = SortSpec::asc(3);
        assert_eq!(s.len(), 3);
        assert!(s.is_prefix() && s.is_asc_prefix());
        assert_eq!(s.col(2), 2);
        assert_eq!(s.dir(2), Direction::Asc);
        assert!(SortSpec::none().is_empty());
        let d = SortSpec::desc(2);
        assert!(d.is_prefix() && !d.is_asc_prefix());
        let m = SortSpec::with_dirs(&[Direction::Asc, Direction::Desc]);
        assert_eq!(m.dir(0), Direction::Asc);
        assert_eq!(m.dir(1), Direction::Desc);
        assert!(!SortSpec::new(vec![(2, Direction::Asc)]).is_prefix());
    }

    #[test]
    fn satisfaction_is_direction_exact_prefix_matching() {
        let provided = SortSpec::with_dirs(&[Direction::Asc, Direction::Desc, Direction::Asc]);
        assert!(provided.satisfies(&SortSpec::none()));
        assert!(provided.satisfies(&SortSpec::asc(1)));
        assert!(provided.satisfies(&provided.prefix(2)));
        assert!(provided.satisfies(&provided));
        assert!(!provided.satisfies(&SortSpec::asc(2)), "direction differs");
        assert!(
            !provided.satisfies(&SortSpec::asc(4)),
            "longer than provided"
        );
        // Normalized flag is an encoding hint: it never blocks satisfaction.
        assert!(provided.satisfies(&SortSpec::asc(1).with_normalized(true)));
    }

    #[test]
    fn reversed_round_trips() {
        let m = SortSpec::with_dirs(&[Direction::Asc, Direction::Desc]);
        let r = m.reversed();
        assert_eq!(r.dir(0), Direction::Desc);
        assert_eq!(r.dir(1), Direction::Asc);
        assert_eq!(r.reversed(), m);
    }

    #[test]
    fn comparisons_respect_direction() {
        let m = SortSpec::with_dirs(&[Direction::Desc, Direction::Asc]);
        assert_eq!(m.cmp_keys(&[5, 1], &[3, 9]), Ordering::Less, "5 desc-first");
        assert_eq!(m.cmp_keys(&[5, 1], &[5, 0]), Ordering::Greater);
        assert_eq!(m.cmp_keys(&[5, 1], &[5, 1]), Ordering::Equal);
        let a = Row::new(vec![1, 2]);
        let b = Row::new(vec![2, 2]);
        assert_eq!(m.cmp_rows(&a, &b), Ordering::Greater, "desc on c0");
    }

    #[test]
    fn code_values_keep_smaller_code_earlier() {
        let m = SortSpec::with_dirs(&[Direction::Desc]);
        // Desc: the larger value is earlier and must get the smaller field.
        assert!(m.code_value(0, 9) < m.code_value(0, 3));
        let asc = SortSpec::asc(1);
        assert!(asc.code_value(0, 3) < asc.code_value(0, 9));
    }

    #[test]
    fn resume_key_lossy_ends_differ_by_direction() {
        let asc = SortSpec::asc(1);
        let desc = SortSpec::desc(1);
        // Ascending: saturation at VALUE_MASK.
        assert_eq!(asc.resume_key(Ovc::new(0, VALUE_MASK, 1)), 0);
        assert_eq!(asc.resume_key(Ovc::new(0, 5, 1)), 1);
        // Descending: huge values complement to 0 — that end is lossy.
        assert_eq!(
            desc.resume_key(Ovc::new(0, desc.code_value(0, u64::MAX), 1)),
            0
        );
        assert_eq!(desc.resume_key(Ovc::new(0, desc.code_value(0, 5), 1)), 1);
    }

    #[test]
    fn normalize_key_preserves_spec_order() {
        let m = SortSpec::with_dirs(&[Direction::Desc, Direction::Asc]);
        let keys: [[u64; 2]; 4] = [[9, 0], [9, 5], [3, 1], [0, 0]];
        for w in keys.windows(2) {
            assert_eq!(m.cmp_keys(&w[0], &w[1]), Ordering::Less);
            assert!(m.normalize_key(&w[0]) < m.normalize_key(&w[1]));
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(SortSpec::none().to_string(), "none");
        assert_eq!(
            SortSpec::with_dirs(&[Direction::Asc, Direction::Desc]).to_string(),
            "[c0 asc, c1 desc]"
        );
        assert_eq!(
            SortSpec::asc(1).with_normalized(true).to_string(),
            "[c0 asc] norm"
        );
    }
}
