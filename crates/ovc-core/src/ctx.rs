//! Query-lifetime execution context and the typed error every fault
//! surfaces as.
//!
//! The engines this reproduction models (F1 Query, Napa) treat per-query
//! fault isolation as table stakes: a query can be cancelled, can time
//! out, can exhaust its spill budget, and can lose a worker to a panic —
//! and in every case the *query* fails with a typed error while the
//! process (and every other query) keeps running.  This module provides
//! the two halves of that contract:
//!
//! * [`QueryCtx`] — a cheaply cloneable handle carrying a cooperative
//!   cancellation token, an optional deadline, and an optional spill
//!   budget.  Executors thread it through their operators and call
//!   [`QueryCtx::check`] at batch and run boundaries; a tripped check
//!   surfaces as an [`ExecError`].
//! * [`ExecError`] + [`contain`] / [`propagate`] — typed error
//!   propagation through iterator-shaped operators.  Operators cannot
//!   return `Result` from `Iterator::next`, so a typed error travels as
//!   a panic payload ([`propagate`] calls `std::panic::panic_any`) and
//!   is caught exactly once at an execution boundary by [`contain`],
//!   which maps the payload back to the original [`ExecError`].  A
//!   *plain* panic (a bug, or an injected fault) caught at the same
//!   boundary becomes [`ExecError::WorkerPanic`] — contained, never
//!   process-fatal.
//!
//! Checks are engineered to be cheap enough for hot paths: cancellation
//! is one relaxed atomic load, and the deadline comparison is only
//! reached when a deadline was actually requested.

use std::any::Any;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Typed execution failure.  Every fault the engine tolerates — user
/// cancellation, deadline expiry, spill-device I/O errors, spill
/// corruption, budget exhaustion, and contained worker panics — maps to
/// exactly one variant, so callers (and the wire protocol) can react by
/// kind instead of string-matching panic messages.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// The query's [`QueryCtx`] was cancelled (client disconnect,
    /// explicit kill, server shutdown).
    Cancelled,
    /// The query ran past its deadline.
    DeadlineExceeded {
        /// The time budget the query was given.
        budget: Duration,
    },
    /// A spill device failed to read or write (I/O error, injected
    /// fault).
    SpillIo {
        /// Human-readable failure detail.
        detail: String,
    },
    /// A spilled run failed validation on read-back: bad magic, torn
    /// frame, or checksum mismatch.
    SpillCorruption {
        /// Human-readable failure detail.
        detail: String,
    },
    /// Writing a run would exceed the query's spill budget.
    SpillBudgetExceeded {
        /// The configured budget in bytes.
        budget_bytes: u64,
        /// Total bytes the query attempted to spill.
        attempted_bytes: u64,
    },
    /// A worker thread panicked; the panic was contained and the
    /// payload (if a string) captured here.
    WorkerPanic {
        /// The panic message, when one was recoverable.
        detail: String,
    },
}

impl ExecError {
    /// Stable machine-readable reason code, used by the server's error
    /// frames and metrics labels.
    pub fn reason(&self) -> &'static str {
        match self {
            ExecError::Cancelled => "cancelled",
            ExecError::DeadlineExceeded { .. } => "timeout",
            ExecError::SpillIo { .. } => "spill_io",
            ExecError::SpillCorruption { .. } => "spill_corruption",
            ExecError::SpillBudgetExceeded { .. } => "spill_budget",
            ExecError::WorkerPanic { .. } => "worker_panic",
        }
    }

    /// True for spill-device failures ([`ExecError::SpillIo`] /
    /// [`ExecError::SpillCorruption`]) — the errors a re-sort-from-source
    /// retry can recover from (the data still exists upstream; only the
    /// spilled copy is bad).
    pub fn is_spill_fault(&self) -> bool {
        matches!(
            self,
            ExecError::SpillIo { .. } | ExecError::SpillCorruption { .. }
        )
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::DeadlineExceeded { budget } => {
                write!(f, "query deadline exceeded (budget {budget:?})")
            }
            ExecError::SpillIo { detail } => write!(f, "spill I/O error: {detail}"),
            ExecError::SpillCorruption { detail } => {
                write!(f, "spill corruption detected: {detail}")
            }
            ExecError::SpillBudgetExceeded {
                budget_bytes,
                attempted_bytes,
            } => write!(
                f,
                "spill budget exceeded: attempted {attempted_bytes} bytes against a \
                 budget of {budget_bytes}"
            ),
            ExecError::WorkerPanic { detail } => write!(f, "worker panicked: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Raise a typed error out of iterator-shaped code.  The payload unwinds
/// until the nearest [`contain`] boundary maps it back to the original
/// [`ExecError`]; it never reaches the user as a raw panic.
pub fn propagate(err: ExecError) -> ! {
    panic::panic_any(err)
}

/// Run `f`, containing any unwind and mapping it to a typed
/// [`ExecError`]: payloads raised by [`propagate`] come back verbatim,
/// everything else (a genuine bug, an injected `panic!`) becomes
/// [`ExecError::WorkerPanic`] with the panic message as detail.
pub fn contain<R>(f: impl FnOnce() -> R) -> Result<R, ExecError> {
    match panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(error_from_panic(payload)),
    }
}

/// Map a caught panic payload (from `catch_unwind` or a `JoinHandle`
/// error) to a typed [`ExecError`].
pub fn error_from_panic(payload: Box<dyn Any + Send>) -> ExecError {
    match payload.downcast::<ExecError>() {
        Ok(err) => *err,
        Err(payload) => {
            let detail = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "worker panicked with a non-string payload".to_string()
            };
            ExecError::WorkerPanic { detail }
        }
    }
}

#[derive(Debug)]
struct CtxInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    budget: Option<Duration>,
    spill_budget_bytes: Option<u64>,
    spilled_bytes: AtomicU64,
}

/// Per-query execution context: cancellation token, optional deadline,
/// optional spill budget.  Clones share state (the handle is an `Arc`),
/// so a server can keep one clone to cancel a query while worker threads
/// poll another.
///
/// A context with no deadline and no budget never trips on its own — it
/// only fails a query if [`QueryCtx::cancel`] is called — so threading
/// one through an executor is behaviour-preserving for untimed queries.
#[derive(Clone, Debug)]
pub struct QueryCtx {
    inner: Arc<CtxInner>,
}

impl Default for QueryCtx {
    fn default() -> Self {
        QueryCtx::new()
    }
}

impl QueryCtx {
    /// A context with no deadline and no spill budget (cancellable
    /// only).
    pub fn new() -> Self {
        QueryCtx::build(None, None)
    }

    /// A context that trips [`ExecError::DeadlineExceeded`] once
    /// `timeout` has elapsed from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        QueryCtx::build(Some(timeout), None)
    }

    /// Full constructor: optional time budget (measured from now) and
    /// optional spill budget in bytes.
    pub fn build(timeout: Option<Duration>, spill_budget_bytes: Option<u64>) -> Self {
        let now = Instant::now();
        QueryCtx {
            inner: Arc::new(CtxInner {
                cancelled: AtomicBool::new(false),
                deadline: timeout.map(|t| now + t),
                budget: timeout,
                spill_budget_bytes,
                spilled_bytes: AtomicU64::new(0),
            }),
        }
    }

    /// Request cooperative cancellation.  Running operators observe it
    /// at their next check and fail the query with
    /// [`ExecError::Cancelled`].
    pub fn cancel(&self) {
        // ovc-lint: allow(relaxed-ordering-audit) -- monotonic one-way flag; observers only need eventual visibility, no data is published under it
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`QueryCtx::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        // ovc-lint: allow(relaxed-ordering-audit) -- monotonic flag read on the per-row hot path; staleness only delays cancellation by one check
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// The time budget this context was built with, if any.
    pub fn time_budget(&self) -> Option<Duration> {
        self.inner.budget
    }

    /// Check cancellation and deadline.  One relaxed atomic load on the
    /// happy path; the clock is only consulted when a deadline exists.
    pub fn check(&self) -> Result<(), ExecError> {
        // ovc-lint: allow(relaxed-ordering-audit) -- see is_cancelled: hot-path flag read, staleness delays the typed error by one check
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(ExecError::Cancelled);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(ExecError::DeadlineExceeded {
                    budget: self.inner.budget.unwrap_or_default(),
                });
            }
        }
        Ok(())
    }

    /// [`QueryCtx::check`], raising through [`propagate`] on failure —
    /// for iterator-shaped code that cannot return `Result`.
    pub fn check_or_propagate(&self) {
        if let Err(err) = self.check() {
            propagate(err);
        }
    }

    /// Charge `bytes` of spill volume against the budget (if one is
    /// configured).  Returns [`ExecError::SpillBudgetExceeded`] once the
    /// running total crosses the budget.
    pub fn charge_spill(&self, bytes: u64) -> Result<(), ExecError> {
        let total = self
            .inner
            .spilled_bytes
            // ovc-lint: allow(relaxed-ordering-audit) -- monotonic byte counter; the budget check reads the fetch_add return value, which is exact
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        if let Some(budget) = self.inner.spill_budget_bytes {
            if total > budget {
                return Err(ExecError::SpillBudgetExceeded {
                    budget_bytes: budget,
                    attempted_bytes: total,
                });
            }
        }
        Ok(())
    }

    /// Total bytes charged so far via [`QueryCtx::charge_spill`].
    pub fn spilled_bytes(&self) -> u64 {
        // ovc-lint: allow(relaxed-ordering-audit) -- monotonic counter read for reporting, same contract as the stats counters
        self.inner.spilled_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ctx_never_trips() {
        let ctx = QueryCtx::new();
        assert!(ctx.check().is_ok());
        assert!(ctx.charge_spill(u64::MAX / 2).is_ok());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let ctx = QueryCtx::new();
        let other = ctx.clone();
        other.cancel();
        assert_eq!(ctx.check(), Err(ExecError::Cancelled));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let ctx = QueryCtx::with_timeout(Duration::ZERO);
        match ctx.check() {
            Err(ExecError::DeadlineExceeded { budget }) => assert_eq!(budget, Duration::ZERO),
            other => panic!("expected deadline error, got {other:?}"),
        }
    }

    #[test]
    fn spill_budget_trips_on_crossing() {
        let ctx = QueryCtx::build(None, Some(100));
        assert!(ctx.charge_spill(60).is_ok());
        let err = ctx.charge_spill(60).unwrap_err();
        assert_eq!(err.reason(), "spill_budget");
        assert_eq!(ctx.spilled_bytes(), 120);
    }

    #[test]
    fn contain_maps_typed_payloads_and_plain_panics() {
        let typed = contain(|| propagate(ExecError::Cancelled));
        assert_eq!(typed, Err(ExecError::Cancelled));
        let plain = contain(|| panic!("boom {}", 7));
        match plain {
            Err(ExecError::WorkerPanic { detail }) => assert_eq!(detail, "boom 7"),
            other => panic!("expected worker panic, got {other:?}"),
        }
        assert_eq!(contain(|| 42), Ok(42));
    }
}
