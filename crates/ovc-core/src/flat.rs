//! Flat, struct-of-arrays storage for coded rows.
//!
//! The normalized-key literature (MonetDB/X100-style blockwise processing)
//! is blunt about row-at-a-time layouts: a sort that chases one heap
//! pointer per row spends its time on cache misses, not comparisons.  With
//! offset-value codes the comparison itself is one `u64` compare, so memory
//! traffic dominates — which makes the run representation the hot-path
//! data structure of this whole reproduction.
//!
//! [`FlatRows`] stores a batch of coded rows as two parallel vectors: one
//! contiguous `Vec<u64>` of column values (fixed row width, row `i` at
//! `values[i * width ..]`) and one `Vec<Ovc>` of codes.  Sorting permutes
//! indices over the buffer, merging copies winner rows slice-to-slice, and
//! spilling writes the words straight out — no per-row `Box<[u64]>` until a
//! true operator boundary materializes [`OvcRow`]s (DESIGN.md §10).

use crate::ovc::Ovc;
use crate::row::{Row, Value};
use crate::stream::OvcRow;

/// A batch of coded rows in flat columnar-run layout: fixed `width`, row
/// `i`'s columns at `values[i * width .. (i + 1) * width]`, code `i` in
/// `codes[i]`.
///
/// The container itself carries no ordering contract; wrappers ([`Run`] in
/// `ovc-sort`, [`crate::CodedBatch`]) pair it with a
/// [`crate::SortSpec`] and enforce the coded-stream invariant.
///
/// [`Run`]: https://docs.rs/ovc-sort
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatRows {
    width: usize,
    values: Vec<Value>,
    codes: Vec<Ovc>,
}

impl FlatRows {
    /// An empty batch of rows of the given width.
    pub fn new(width: usize) -> Self {
        FlatRows {
            width,
            values: Vec::new(),
            codes: Vec::new(),
        }
    }

    /// An empty batch with capacity for `rows` rows.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        FlatRows {
            width,
            values: Vec::with_capacity(width * rows),
            codes: Vec::with_capacity(rows),
        }
    }

    /// Build from raw parts.  Panics unless `values.len()` is `codes.len()
    /// * width`.
    pub fn from_parts(width: usize, values: Vec<Value>, codes: Vec<Ovc>) -> Self {
        assert_eq!(
            values.len(),
            codes.len() * width,
            "flat buffer length must be rows * width"
        );
        FlatRows {
            width,
            values,
            codes,
        }
    }

    /// Flatten boxed coded rows.  All rows must share one width; an empty
    /// input uses `fallback_width` (callers pass the key length so empty
    /// runs still encode a sane header).
    pub fn from_ovc_rows(rows: Vec<OvcRow>, fallback_width: usize) -> Self {
        let width = rows
            .first()
            .map(|r| r.row.width())
            .unwrap_or(fallback_width);
        let mut flat = FlatRows::with_capacity(width, rows.len());
        for OvcRow { row, code } in rows {
            flat.push(row.cols(), code);
        }
        flat
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Is the batch empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Columns per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The contiguous value buffer (`len() * width()` words).
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The parallel code vector.
    #[inline]
    pub fn codes(&self) -> &[Ovc] {
        &self.codes
    }

    /// All columns of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.values[i * self.width..(i + 1) * self.width]
    }

    /// The leading `key_len` columns of row `i`.
    #[inline]
    pub fn key(&self, i: usize, key_len: usize) -> &[Value] {
        &self.values[i * self.width..i * self.width + key_len]
    }

    /// Code of row `i`.
    #[inline]
    pub fn code(&self, i: usize) -> Ovc {
        self.codes[i]
    }

    /// Overwrite the code of row `i` (the batch-seam head repair:
    /// promoting a mid-stream batch to standalone re-bases code 0 —
    /// [`crate::batch::repair_head`]).
    #[inline]
    pub fn set_code(&mut self, i: usize, code: Ovc) {
        self.codes[i] = code;
    }

    /// Keep only the first `rows` rows (values and codes truncate
    /// together; a no-op when `rows >= len()`).
    pub fn truncate(&mut self, rows: usize) {
        if rows < self.len() {
            self.values.truncate(rows * self.width);
            self.codes.truncate(rows);
        }
    }

    /// Append a row.  Panics unless `row.len()` equals the width — a
    /// mixed-width push would silently corrupt every later `row(i)`
    /// offset, so the check stays on in release builds (one predictable
    /// compare next to a memcpy).
    #[inline]
    pub fn push(&mut self, row: &[Value], code: Ovc) {
        assert_eq!(row.len(), self.width, "flat rows require uniform width");
        self.values.extend_from_slice(row);
        self.codes.push(code);
    }

    /// Append row `i` of `src` (a slice-to-slice copy, the merge winner's
    /// move into the output buffer).  Panics unless widths match.
    #[inline]
    pub fn push_from(&mut self, src: &FlatRows, i: usize, code: Ovc) {
        assert_eq!(src.width, self.width, "flat rows require uniform width");
        self.values.extend_from_slice(src.row(i));
        self.codes.push(code);
    }

    /// Iterate `(columns, code)` pairs without materializing rows.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], Ovc)> + '_ {
        (0..self.len()).map(|i| (self.row(i), self.code(i)))
    }

    /// Materialize boxed coded rows (a true operator boundary: one
    /// allocation per row).
    pub fn to_ovc_rows(&self) -> Vec<OvcRow> {
        (0..self.len())
            .map(|i| OvcRow::new(Row::from_slice(self.row(i)), self.code(i)))
            .collect()
    }

    /// Keep only the rows whose index satisfies `keep`, preserving order
    /// and codes (used by code-inspection dedup, where dropping a
    /// duplicate-coded row leaves every surviving code exact).
    pub fn retain_indices(&self, keep: impl Fn(usize, Ovc) -> bool) -> FlatRows {
        let mut out = FlatRows::with_capacity(self.width, self.len());
        for i in 0..self.len() {
            let code = self.code(i);
            if keep(i, code) {
                out.push_from(self, i, code);
            }
        }
        out
    }

    /// Raw parts `(width, values, codes)` — the spill encoding writes
    /// these words directly.
    pub fn into_parts(self) -> (usize, Vec<Value>, Vec<Ovc>) {
        (self.width, self.values, self.codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlatRows {
        let mut f = FlatRows::with_capacity(3, 2);
        f.push(&[1, 2, 3], Ovc::new(0, 1, 2));
        f.push(&[1, 2, 9], Ovc::new(2, 9, 2));
        f
    }

    #[test]
    fn accessors() {
        let f = sample();
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        assert_eq!(f.width(), 3);
        assert_eq!(f.row(1), &[1, 2, 9]);
        assert_eq!(f.key(1, 2), &[1, 2]);
        assert_eq!(f.code(0), Ovc::new(0, 1, 2));
        assert_eq!(f.values().len(), 6);
        assert_eq!(f.codes().len(), 2);
    }

    #[test]
    fn iter_and_materialize_agree() {
        let f = sample();
        let from_iter: Vec<(Vec<u64>, Ovc)> = f.iter().map(|(r, c)| (r.to_vec(), c)).collect();
        let boxed = f.to_ovc_rows();
        assert_eq!(boxed.len(), 2);
        for (i, r) in boxed.iter().enumerate() {
            assert_eq!(r.row.cols(), &from_iter[i].0[..]);
            assert_eq!(r.code, from_iter[i].1);
        }
    }

    #[test]
    fn round_trips_through_boxed_rows() {
        let f = sample();
        let back = FlatRows::from_ovc_rows(f.to_ovc_rows(), 3);
        assert_eq!(back, f);
    }

    #[test]
    fn push_from_copies_rows() {
        let f = sample();
        let mut out = FlatRows::new(3);
        out.push_from(&f, 1, f.code(1));
        assert_eq!(out.row(0), f.row(1));
    }

    #[test]
    fn retain_filters_by_code() {
        let mut f = FlatRows::new(1);
        f.push(&[1], Ovc::new(0, 1, 1));
        f.push(&[1], Ovc::duplicate());
        f.push(&[2], Ovc::new(0, 2, 1));
        let kept = f.retain_indices(|_, c| !c.is_duplicate());
        assert_eq!(kept.len(), 2);
        assert_eq!(kept.row(1), &[2]);
    }

    #[test]
    fn set_code_and_truncate() {
        let mut f = sample();
        f.set_code(1, Ovc::duplicate());
        assert!(f.code(1).is_duplicate());
        f.truncate(5); // no-op past the end
        assert_eq!(f.len(), 2);
        f.truncate(1);
        assert_eq!(f.len(), 1);
        assert_eq!(f.values().len(), 3);
        assert_eq!(f.row(0), &[1, 2, 3]);
    }

    #[test]
    fn zero_width_rows() {
        let mut f = FlatRows::new(0);
        f.push(&[], Ovc::duplicate());
        f.push(&[], Ovc::duplicate());
        assert_eq!(f.len(), 2);
        assert_eq!(f.row(1), &[] as &[u64]);
        assert_eq!(f.iter().count(), 2);
    }

    #[test]
    fn parts_round_trip() {
        let f = sample();
        let (w, v, c) = f.clone().into_parts();
        assert_eq!(FlatRows::from_parts(w, v, c), f);
    }
}
