//! Deterministic fault injection for the execution layer.
//!
//! A process-wide registry of *injection points* the engine consults at
//! the places faults occur in production: spill-device reads and writes,
//! worker thread bodies, and exchange-channel consumers.  Tests install
//! a seeded [`FaultConfig`]; the engine then fails deterministically at
//! the configured points, and `tests/fault_injection.rs` asserts the
//! system-wide invariant: **every injected fault yields either a clean
//! typed [`ExecError`] or byte-identical output — never truncation,
//! deadlock, or wrong rows.**
//!
//! Cost discipline: when no config is installed (the production state)
//! every probe is a single relaxed atomic load and nothing else — no
//! lock, no hash, no branch on per-point state.  Determinism: firing
//! decisions hash `(seed, point, nth-probe-of-that-point)` with
//! SplitMix64, so a given seed replays the same decisions for the same
//! probe sequence.  (Under multi-threaded execution the *interleaving*
//! of probes may vary run to run; the invariant above holds regardless
//! of which worker a fault lands on.)
//!
//! The registry is global, so tests that install faults must serialize
//! with each other (the fault-injection suite shares one lock) and clear
//! the registry when done — [`install`] returns an RAII [`FaultGuard`]
//! for exactly that.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::ctx::ExecError;

/// Places the engine consults the registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultPoint {
    /// A spill device is about to write a run — firing fails the write
    /// with [`ExecError::SpillIo`].
    SpillWrite,
    /// A spill device is about to read a run back — firing fails the
    /// read with [`ExecError::SpillIo`].
    SpillRead,
    /// A spill device has encoded a run — firing flips one byte of the
    /// encoding, which the checksummed format detects on read-back as
    /// [`ExecError::SpillCorruption`].
    SpillCorrupt,
    /// A parallel worker (exchange producer, partition worker, merge
    /// feeder) is starting — firing panics the worker, exercising panic
    /// containment and poison-frame propagation.
    WorkerPanic,
    /// An exchange consumer is about to receive — firing sleeps the
    /// consumer briefly, exercising bounded-channel backpressure.
    SlowConsumer,
}

const POINT_COUNT: usize = 5;

impl FaultPoint {
    fn index(self) -> usize {
        match self {
            FaultPoint::SpillWrite => 0,
            FaultPoint::SpillRead => 1,
            FaultPoint::SpillCorrupt => 2,
            FaultPoint::WorkerPanic => 3,
            FaultPoint::SlowConsumer => 4,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Rule {
    /// Firing probability in thousandths (1000 = always).
    permille: u32,
    /// Stop firing after this many hits (`None` = unlimited).
    max_fires: Option<u64>,
}

/// A seeded fault plan: which points fire, with what probability, how
/// many times.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    seed: u64,
    rules: [Option<Rule>; POINT_COUNT],
}

impl FaultConfig {
    /// An empty plan (no point fires) with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            rules: [None; POINT_COUNT],
        }
    }

    /// Fire `point` with probability `permille`/1000 on every probe.
    pub fn with(mut self, point: FaultPoint, permille: u32) -> Self {
        self.rules[point.index()] = Some(Rule {
            permille: permille.min(1000),
            max_fires: None,
        });
        self
    }

    /// Like [`FaultConfig::with`], but stop after `max_fires` hits.
    pub fn with_limited(mut self, point: FaultPoint, permille: u32, max_fires: u64) -> Self {
        self.rules[point.index()] = Some(Rule {
            permille: permille.min(1000),
            max_fires: Some(max_fires),
        });
        self
    }

    /// Fire `point` on every probe.
    pub fn always(self, point: FaultPoint) -> Self {
        self.with(point, 1000)
    }

    /// Fire `point` exactly once.
    pub fn once(self, point: FaultPoint) -> Self {
        self.with_limited(point, 1000, 1)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct RuleState {
    permille: u32,
    max_fires: Option<u64>,
    fired: u64,
    probes: u64,
}

struct Registry {
    seed: u64,
    rules: [Option<RuleState>; POINT_COUNT],
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

/// Clears the installed fault plan when dropped, so a panicking test
/// cannot leave faults armed for its successors.
#[must_use = "dropping the guard immediately clears the fault plan"]
pub struct FaultGuard {
    _private: (),
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Install a fault plan process-wide, replacing any previous one.  The
/// returned guard clears the plan on drop.
pub fn install(config: FaultConfig) -> FaultGuard {
    let mut registry = lock_registry();
    *registry = Some(Registry {
        seed: config.seed,
        rules: config.rules.map(|r| {
            r.map(|rule| RuleState {
                permille: rule.permille,
                max_fires: rule.max_fires,
                fired: 0,
                probes: 0,
            })
        }),
    });
    ENABLED.store(true, Ordering::Release);
    FaultGuard { _private: () }
}

/// Remove the installed fault plan; all probes return to the zero-cost
/// disabled path.
pub fn clear() {
    let mut registry = lock_registry();
    ENABLED.store(false, Ordering::Release);
    *registry = None;
}

/// Whether a fault plan is currently installed.
pub fn enabled() -> bool {
    // ovc-lint: allow(relaxed-ordering-audit) -- test-only toggle; install/clear use Release and the registry mutex is the real fence
    ENABLED.load(Ordering::Relaxed)
}

fn lock_registry() -> std::sync::MutexGuard<'static, Option<Registry>> {
    // A panicking prober cannot leave the registry logically corrupt —
    // all state is plain counters — so poisoning is safe to ignore.
    match REGISTRY.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Probe `point`: true when the installed plan says this occurrence
/// fires.  One relaxed atomic load when nothing is installed.
pub fn should_fire(point: FaultPoint) -> bool {
    // ovc-lint: allow(relaxed-ordering-audit) -- zero-cost disabled probe; a stale read skips at most one fault occurrence, and plans are installed before threads start
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    let mut registry = lock_registry();
    let Some(registry) = registry.as_mut() else {
        return false;
    };
    let seed = registry.seed;
    let Some(rule) = registry.rules[point.index()].as_mut() else {
        return false;
    };
    if let Some(max) = rule.max_fires {
        if rule.fired >= max {
            return false;
        }
    }
    let nth = rule.probes;
    rule.probes += 1;
    let h = splitmix64(
        seed ^ splitmix64(point.index() as u64) ^ nth.wrapping_mul(0x2545_f491_4f6c_dd1d),
    );
    let fire = h % 1000 < u64::from(rule.permille);
    if fire {
        rule.fired += 1;
    }
    fire
}

/// Probe [`FaultPoint::WorkerPanic`]; fires as a *plain* `panic!` (not a
/// typed payload) so containment of arbitrary panics is what gets
/// exercised.
pub fn maybe_panic() {
    if should_fire(FaultPoint::WorkerPanic) {
        panic!("injected fault: worker panic");
    }
}

/// Probe [`FaultPoint::SlowConsumer`]; fires as a short sleep.
pub fn maybe_slow_consumer() {
    if should_fire(FaultPoint::SlowConsumer) {
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Probe a spill I/O point ([`FaultPoint::SpillWrite`] or
/// [`FaultPoint::SpillRead`]); fires as a typed [`ExecError::SpillIo`].
pub fn maybe_spill_io(point: FaultPoint) -> Result<(), ExecError> {
    if should_fire(point) {
        return Err(ExecError::SpillIo {
            detail: format!("injected fault: {point:?}"),
        });
    }
    Ok(())
}

/// Probe [`FaultPoint::SpillCorrupt`]; fires by flipping one
/// deterministically chosen byte of `bytes`.  Returns whether a flip
/// happened.
pub fn maybe_corrupt(bytes: &mut [u8]) -> bool {
    if bytes.is_empty() || !should_fire(FaultPoint::SpillCorrupt) {
        return false;
    }
    let pos = (splitmix64(bytes.len() as u64) as usize) % bytes.len();
    bytes[pos] ^= 0x40;
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; these unit tests serialize on one
    // lock so `cargo test`'s parallel threads cannot interleave plans.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_registry_never_fires() {
        let _l = locked();
        clear();
        assert!(!enabled());
        for _ in 0..100 {
            assert!(!should_fire(FaultPoint::SpillWrite));
        }
        assert!(maybe_spill_io(FaultPoint::SpillRead).is_ok());
        let mut bytes = vec![1u8, 2, 3];
        assert!(!maybe_corrupt(&mut bytes));
        assert_eq!(bytes, vec![1, 2, 3]);
    }

    #[test]
    fn always_fires_and_guard_clears() {
        let _l = locked();
        {
            let _guard = install(FaultConfig::new(42).always(FaultPoint::SpillWrite));
            assert!(should_fire(FaultPoint::SpillWrite));
            assert!(maybe_spill_io(FaultPoint::SpillWrite).is_err());
            // Unconfigured points stay quiet.
            assert!(!should_fire(FaultPoint::SpillRead));
        }
        assert!(!enabled());
        assert!(!should_fire(FaultPoint::SpillWrite));
    }

    #[test]
    fn once_fires_exactly_once() {
        let _l = locked();
        let _guard = install(FaultConfig::new(7).once(FaultPoint::SpillRead));
        let fires: usize = (0..50)
            .filter(|_| should_fire(FaultPoint::SpillRead))
            .count();
        assert_eq!(fires, 1);
    }

    #[test]
    fn same_seed_replays_same_decisions() {
        let _l = locked();
        let run = |seed: u64| -> Vec<bool> {
            let _guard = install(FaultConfig::new(seed).with(FaultPoint::SpillWrite, 300));
            (0..64)
                .map(|_| should_fire(FaultPoint::SpillWrite))
                .collect()
        };
        let a = run(123);
        let b = run(123);
        let c = run(456);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
    }

    #[test]
    fn corruption_flips_one_byte() {
        let _l = locked();
        let _guard = install(FaultConfig::new(9).always(FaultPoint::SpillCorrupt));
        let original = vec![0u8; 64];
        let mut bytes = original.clone();
        assert!(maybe_corrupt(&mut bytes));
        let diffs = original.iter().zip(&bytes).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }
}
