//! Row and sort-key model.
//!
//! The paper's evaluation uses rows whose key columns are 8-byte integers
//! ("each key column is an 8-byte integer with only a few distinct values",
//! Section 6).  We adopt the same model: a row is a flat sequence of `u64`
//! columns, and a sort key is a *prefix* of those columns.  Operators that
//! need a non-prefix sort key project first, exactly the way real engines
//! normalize keys before a sort.

use std::fmt;

/// A single column value.  Key columns and payload columns share this type.
pub type Value = u64;

/// A row: a boxed slice of column values.
///
/// The first [`SortKey::len`] columns form the sort key; the remainder is
/// payload carried through operators untouched.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row {
    cols: Box<[Value]>,
}

impl Row {
    /// Create a row from column values.
    pub fn new(cols: Vec<Value>) -> Self {
        Row {
            cols: cols.into_boxed_slice(),
        }
    }

    /// Create a row from a slice of column values.
    pub fn from_slice(cols: &[Value]) -> Self {
        Row {
            cols: cols.to_vec().into_boxed_slice(),
        }
    }

    /// All columns of the row.
    #[inline]
    pub fn cols(&self) -> &[Value] {
        &self.cols
    }

    /// Number of columns in the row.
    #[inline]
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The sort-key prefix of the row.
    ///
    /// Panics if the row has fewer than `key_len` columns.
    #[inline]
    pub fn key(&self, key_len: usize) -> &[Value] {
        &self.cols[..key_len]
    }

    /// The payload suffix of the row (columns past the sort key).
    #[inline]
    pub fn payload(&self, key_len: usize) -> &[Value] {
        &self.cols[key_len..]
    }

    /// Concatenate this row's columns with another's (used by joins).
    pub fn concat(&self, other: &Row) -> Row {
        let mut cols = Vec::with_capacity(self.cols.len() + other.cols.len());
        cols.extend_from_slice(&self.cols);
        cols.extend_from_slice(&other.cols);
        Row::new(cols)
    }

    /// Project the row onto the given column indices (in order).
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.cols[i]).collect())
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Row{:?}", &self.cols[..])
    }
}

impl From<Vec<Value>> for Row {
    fn from(cols: Vec<Value>) -> Self {
        Row::new(cols)
    }
}

impl From<&[Value]> for Row {
    fn from(cols: &[Value]) -> Self {
        Row::from_slice(cols)
    }
}

/// Description of a sort key: the number of leading columns that form it.
///
/// Every [`crate::stream::OvcStream`] is sorted ascending on this prefix and
/// carries offset-value codes with arity equal to `len`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortKey {
    /// Number of leading key columns (the "arity" of offset-value codes).
    pub len: usize,
}

impl SortKey {
    /// A sort key over the first `len` columns.
    pub const fn new(len: usize) -> Self {
        SortKey { len }
    }
}

/// Compare two rows on their leading `key_len` columns.
///
/// This is the *uninstrumented* comparison used by reference
/// implementations and tests; instrumented comparisons live in
/// [`crate::compare`].
#[inline]
pub fn cmp_keys(a: &Row, b: &Row, key_len: usize) -> std::cmp::Ordering {
    a.key(key_len).cmp(b.key(key_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_accessors() {
        let r = Row::new(vec![1, 2, 3, 4, 5]);
        assert_eq!(r.width(), 5);
        assert_eq!(r.key(2), &[1, 2]);
        assert_eq!(r.payload(2), &[3, 4, 5]);
        assert_eq!(r.cols(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn row_concat() {
        let a = Row::new(vec![1, 2]);
        let b = Row::new(vec![3]);
        assert_eq!(a.concat(&b), Row::new(vec![1, 2, 3]));
    }

    #[test]
    fn row_project() {
        let r = Row::new(vec![10, 20, 30, 40]);
        assert_eq!(r.project(&[3, 1]), Row::new(vec![40, 20]));
        assert_eq!(r.project(&[]), Row::new(vec![]));
    }

    #[test]
    fn key_comparison_is_prefix_only() {
        let a = Row::new(vec![1, 2, 99]);
        let b = Row::new(vec![1, 2, 0]);
        assert_eq!(cmp_keys(&a, &b, 2), std::cmp::Ordering::Equal);
        assert_eq!(cmp_keys(&a, &b, 3), std::cmp::Ordering::Greater);
    }

    #[test]
    fn empty_key_rows_compare_equal() {
        let a = Row::new(vec![7]);
        let b = Row::new(vec![8]);
        assert_eq!(cmp_keys(&a, &b, 0), std::cmp::Ordering::Equal);
    }
}
