//! # ovc-core — offset-value coding foundations
//!
//! Reproduction of the foundational machinery of *"Offset-value coding in
//! database query processing"* (Goetz Graefe and Thanh Do, EDBT 2023;
//! extended version arXiv:2210.00034):
//!
//! * [`row`] — rows of `u64` columns with prefix sort keys;
//! * [`ovc`] — ascending offset-value codes packed in one `u64`, with early
//!   and late fences folded in (the F1 layout of Section 5);
//! * [`desc`] — descending codes and the dual theorem (Table 1);
//! * [`normalized`] — byte-offset codes over normalized keys (the IBM CFC
//!   variant of Sections 3 and 4.1);
//! * [`compare`] — instrumented comparators implementing Iyer's equal- and
//!   unequal-code theorems (Table 2);
//! * [`theorem`] — the paper's new `max`-combination theorem, the filter
//!   corollary, and the [`theorem::OvcAccumulator`] every operator uses to
//!   produce output codes;
//! * [`mod@derive`] — reference derivation/validation of exact codes;
//! * [`ctx`] — per-query execution context ([`ctx::QueryCtx`]:
//!   cancellation, deadlines, spill budgets) and the typed
//!   [`ctx::ExecError`] with panic-contained propagation;
//! * [`fault`] — the deterministic, seeded fault-injection registry
//!   (zero-cost when disabled) behind the fault-tolerance test suite;
//! * [`flat`] — [`flat::FlatRows`]: contiguous struct-of-arrays storage for
//!   coded rows, the memory layout of the sort/merge hot path (one
//!   `Vec<u64>` of values plus a parallel `Vec<Ovc>` of codes);
//! * [`spec`] — [`spec::SortSpec`]: the first-class ordering contract
//!   (per-column directions plus an optional normalized-key flag) that
//!   streams carry and planners match on;
//! * [`stream`] — the [`stream::OvcStream`] contract operators compose on,
//!   plus the [`stream::CodedBatch`] / [`stream::SendOvcStream`] adapters
//!   that let coded streams cross thread boundaries;
//! * [`batch`] — the [`batch::BatchStream`] contract for morsel-style
//!   batch-at-a-time pipelines: fixed-size [`flat::FlatRows`] batches
//!   whose codes stay exact across batch seams, with
//!   [`batch::Batcher`] / [`batch::BatchRows`] converting to and from
//!   row streams and seam-aware validation;
//! * [`stats`] — comparison and spill accounting for the paper's `N × K`
//!   bound and the Figure 6 spill claims, single-threaded (`Stats`) and
//!   sendable ([`stats::AtomicStats`], per-thread snapshot merging);
//! * [`metrics`] — per-operator runtime profiling (`EXPLAIN ANALYZE`):
//!   the [`metrics::ProfileNode`] accumulator tree executors stamp
//!   measurements into, and the [`metrics::ChannelGauge`] wait/occupancy
//!   counters of the threaded exchange;
//! * [`table1`] — the paper's running example as a shared fixture.
//!
//! ## Quick example
//!
//! ```
//! use ovc_core::{Row, Ovc, derive::derive_codes};
//!
//! // Table 1 of the paper: a sorted stream with four key columns.
//! let rows = ovc_core::table1::rows();
//! let codes = derive_codes(&rows, 4);
//!
//! // First row is coded relative to "−∞": offset 0, value 5 ("405").
//! assert_eq!(codes[0], Ovc::new(0, 5, 4));
//! // The duplicate row's code has offset == arity ("0" ascending).
//! assert!(codes[4].is_duplicate());
//! # let _ = Row::new(vec![1]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod compare;
pub mod ctx;
pub mod derive;
pub mod desc;
pub mod fault;
pub mod flat;
pub mod metrics;
pub mod normalized;
pub mod ovc;
pub mod row;
pub mod spec;
pub mod stats;
pub mod stream;
pub mod table1;
pub mod theorem;

pub use batch::{BatchRows, BatchStream, Batcher, VecBatchStream};
pub use ctx::{ExecError, QueryCtx};
pub use flat::FlatRows;
pub use metrics::{
    ChannelGauge, ChannelGaugeSnapshot, ExchangeGauges, OpMetrics, PlanProfile, ProfileNode,
};
pub use ovc::Ovc;
pub use row::{Row, SortKey, Value};
pub use spec::{Direction, SortSpec};
pub use stats::{AtomicStats, CostWeights, Stats, StatsSnapshot};
pub use stream::{CodedBatch, OvcRow, OvcStream, SendOvcStream, VecStream};
