//! Instrumented key comparisons with offset-value-code maintenance.
//!
//! The rules implemented here are Section 3's (illustrated by Table 2):
//!
//! * Two keys coded relative to the **same base** compare by their codes
//!   first.  If the codes differ, the comparison is decided and — by Iyer's
//!   *unequal code theorem* (a corollary of the paper's new theorem) — the
//!   loser's code relative to the winner equals its existing code, so no
//!   adjustment is needed (Table 2, cases 1 and 2).
//! * If the codes are equal, column-value comparisons resume past the
//!   shared prefix and value (Iyer's *equal code theorem*); the loser's
//!   offset grows by the number of equal columns found and its value is the
//!   column at the new offset (Table 2, case 3).
//!
//! Every column-value comparison is counted in [`Stats`], which is how the
//! `N × K` bound of Section 3 is verified experimentally.

use std::cmp::Ordering;

use crate::ovc::Ovc;
use crate::row::Value;
use crate::spec::SortSpec;
use crate::stats::Stats;

/// Compare two keys whose codes are relative to the same base key.
///
/// On return:
/// * `Ordering::Less` / `Ordering::Greater` — decided; if column
///   comparisons were required, the loser's code has been updated to be
///   relative to the winner; otherwise the loser's existing code is already
///   correct relative to the winner (unequal code theorem).
/// * `Ordering::Equal` — the keys are equal.  Codes are left untouched; the
///   caller decides the winner (e.g. by run index, for stability) and must
///   set the loser's code to [`Ovc::duplicate`].
///
/// Fences never have their codes adjusted: a fence comparison is decided
/// entirely by the 64-bit code compare (early < valid < late), which is the
/// "free" comparison the paper describes in Section 5.
#[inline]
pub fn compare_same_base(
    a_key: &[Value],
    b_key: &[Value],
    a_code: &mut Ovc,
    b_code: &mut Ovc,
    stats: &Stats,
) -> Ordering {
    stats.count_ovc_cmp();
    if a_code != b_code {
        // Unequal code theorem: the loser's code relative to the winner is
        // its code relative to the old base.  Nothing to recompute.
        return (*a_code).cmp(b_code);
    }
    if !a_code.is_valid() {
        // Two early fences or two late fences; order is irrelevant.
        return Ordering::Equal;
    }
    let arity = a_key.len();
    debug_assert_eq!(arity, b_key.len());
    if a_code.is_duplicate() {
        // Both keys equal the base, hence each other.
        return Ordering::Equal;
    }
    // Equal code theorem: the difference lies past the shared prefix and
    // value; resume column comparisons there.
    let start = a_code.resume_column(arity);
    for i in start..arity {
        stats.count_col_cmp();
        match a_key[i].cmp(&b_key[i]) {
            Ordering::Equal => continue,
            Ordering::Less => {
                *b_code = Ovc::new(i, b_key[i], arity);
                return Ordering::Less;
            }
            Ordering::Greater => {
                *a_code = Ovc::new(i, a_key[i], arity);
                return Ordering::Greater;
            }
        }
    }
    Ordering::Equal
}

/// Direction-aware [`compare_same_base`]: the same two theorems, with
/// column comparisons and loser re-coding driven by a [`SortSpec`].
///
/// Key slices are laid out in spec order (element `i` is the `i`-th key
/// of each row); codes carry direction-encoded values
/// ([`SortSpec::code_value`]), which keeps the single-integer code
/// comparison decisive for mixed ascending/descending keys.  The resume
/// point after equal codes is [`SortSpec::resume_key`], whose lossy-end
/// check is direction-dependent.
#[inline]
pub fn compare_same_base_spec(
    a_key: &[Value],
    b_key: &[Value],
    a_code: &mut Ovc,
    b_code: &mut Ovc,
    spec: &SortSpec,
    stats: &Stats,
) -> Ordering {
    stats.count_ovc_cmp();
    if a_code != b_code {
        // Unequal code theorem, direction-independent: the loser's code
        // relative to the winner is its existing code.
        return (*a_code).cmp(b_code);
    }
    if !a_code.is_valid() {
        return Ordering::Equal;
    }
    let arity = spec.len();
    debug_assert_eq!(arity, a_key.len());
    debug_assert_eq!(arity, b_key.len());
    if a_code.is_duplicate() {
        return Ordering::Equal;
    }
    let start = spec.resume_key(*a_code);
    for i in start..arity {
        stats.count_col_cmp();
        match spec.cmp_values(i, a_key[i], b_key[i]) {
            Ordering::Equal => continue,
            Ordering::Less => {
                *b_code = Ovc::new(i, spec.code_value(i, b_key[i]), arity);
                return Ordering::Less;
            }
            Ordering::Greater => {
                *a_code = Ovc::new(i, spec.code_value(i, a_key[i]), arity);
                return Ordering::Greater;
            }
        }
    }
    Ordering::Equal
}

/// Compare two keys column by column from the start, setting the loser's
/// code relative to the winner.
///
/// Used where no shared base exists (priority-queue build-up, run
/// boundaries).  Returns `Ordering::Equal` without touching codes when the
/// keys are equal; the caller picks the winner and assigns
/// [`Ovc::duplicate`] to the loser.
#[inline]
pub fn full_compare_set_loser(
    a_key: &[Value],
    b_key: &[Value],
    a_code: &mut Ovc,
    b_code: &mut Ovc,
    stats: &Stats,
) -> Ordering {
    let arity = a_key.len();
    debug_assert_eq!(arity, b_key.len());
    for i in 0..arity {
        stats.count_col_cmp();
        match a_key[i].cmp(&b_key[i]) {
            Ordering::Equal => continue,
            Ordering::Less => {
                *b_code = Ovc::new(i, b_key[i], arity);
                return Ordering::Less;
            }
            Ordering::Greater => {
                *a_code = Ovc::new(i, a_key[i], arity);
                return Ordering::Greater;
            }
        }
    }
    Ordering::Equal
}

/// Exact offset-value code of `succ` relative to `pred`, where
/// `pred <= succ` in the sort order.
///
/// This is the textbook definition (`pre`/`val` of Section 4): offset is
/// the maximal shared prefix, value is `succ`'s column at that offset;
/// a fully shared key yields the duplicate code.
#[inline]
pub fn derive_code(pred_key: &[Value], succ_key: &[Value], stats: &Stats) -> Ovc {
    let arity = succ_key.len();
    debug_assert_eq!(arity, pred_key.len());
    for i in 0..arity {
        stats.count_col_cmp();
        if pred_key[i] != succ_key[i] {
            debug_assert!(
                pred_key[i] < succ_key[i],
                "derive_code requires pred <= succ (violated at column {i})"
            );
            return Ovc::new(i, succ_key[i], arity);
        }
    }
    Ovc::duplicate()
}

/// Direction-aware [`derive_code`]: exact code of `succ` relative to
/// `pred` under `spec` (`pred` at or before `succ` in spec order).  The
/// offset is the shared-prefix length exactly as in the ascending case;
/// the value is direction-encoded via [`SortSpec::code_value`].
#[inline]
pub fn derive_code_spec(
    pred_key: &[Value],
    succ_key: &[Value],
    spec: &SortSpec,
    stats: &Stats,
) -> Ovc {
    let arity = spec.len();
    debug_assert_eq!(arity, pred_key.len());
    debug_assert_eq!(arity, succ_key.len());
    for i in 0..arity {
        stats.count_col_cmp();
        if pred_key[i] != succ_key[i] {
            debug_assert!(
                spec.cmp_values(i, pred_key[i], succ_key[i]) == Ordering::Less,
                "derive_code_spec requires pred <= succ in spec order (violated at key {i})"
            );
            return Ovc::new(i, spec.code_value(i, succ_key[i]), arity);
        }
    }
    Ovc::duplicate()
}

/// Baseline full-key comparison: counts one row comparison plus one
/// column-value comparison per column visited, no codes involved.
///
/// This is the "comparing an operator's output row-by-row,
/// column-by-column" method the paper calls too expensive.
#[inline]
pub fn compare_keys_counted(a_key: &[Value], b_key: &[Value], stats: &Stats) -> Ordering {
    stats.count_row_cmp();
    let arity = a_key.len().min(b_key.len());
    for i in 0..arity {
        stats.count_col_cmp();
        match a_key[i].cmp(&b_key[i]) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a_key.len().cmp(&b_key.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 of the paper: pairs of keys encoded relative to the shared
    /// base (3,4,2,5); decisions by offsets (case 1), by values (case 2),
    /// and by additional column comparisons (case 3).
    #[test]
    fn table2_case1_offsets_decide() {
        let stats = Stats::default();
        let b_key = [3u64, 5, 8, 2]; // ovc rel base: offset 1, value 5 -> "305"
        let c_key = [3u64, 4, 6, 1]; // ovc rel base: offset 2, value 6 -> "206"
        let mut b_code = Ovc::new(1, 5, 4);
        let mut c_code = Ovc::new(2, 6, 4);
        assert_eq!(b_code.paper_decimal(), 305);
        assert_eq!(c_code.paper_decimal(), 206);
        // C has the higher offset, so C is earlier; B is the loser and its
        // code relative to the winner stays 305.
        let ord = compare_same_base(&b_key, &c_key, &mut b_code, &mut c_code, &stats);
        assert_eq!(ord, Ordering::Greater);
        assert_eq!(b_code.paper_decimal(), 305);
        assert_eq!(stats.col_value_cmps(), 0, "offsets alone decide case 1");
    }

    #[test]
    fn table2_case2_values_decide() {
        let stats = Stats::default();
        let b_key = [3u64, 4, 3, 8]; // offset 2, value 3 -> "203"
        let c_key = [3u64, 4, 9, 1]; // offset 2, value 9 -> "209"
        let mut b_code = Ovc::new(2, 3, 4);
        let mut c_code = Ovc::new(2, 9, 4);
        let ord = compare_same_base(&b_key, &c_key, &mut b_code, &mut c_code, &stats);
        assert_eq!(ord, Ordering::Less);
        assert_eq!(c_code.paper_decimal(), 209, "loser keeps its code");
        assert_eq!(stats.col_value_cmps(), 0, "values in codes decide case 2");
    }

    #[test]
    fn table2_case3_column_comparisons_decide() {
        let stats = Stats::default();
        let b_key = [3u64, 7, 4, 7]; // offset 1, value 7 -> "307"
        let c_key = [3u64, 7, 4, 9]; // offset 1, value 7 -> "307"
        let mut b_code = Ovc::new(1, 7, 4);
        let mut c_code = Ovc::new(1, 7, 4);
        let ord = compare_same_base(&b_key, &c_key, &mut b_code, &mut c_code, &stats);
        assert_eq!(ord, Ordering::Less);
        // Loser C re-coded relative to winner B: offset 3, value 9 -> "109".
        assert_eq!(c_code.paper_decimal(), 109);
        assert_eq!(b_code.paper_decimal(), 307, "winner's code unchanged");
        // Columns 2 and 3 were compared (resume starts past offset+value).
        assert_eq!(stats.col_value_cmps(), 2);
    }

    #[test]
    fn equal_keys_report_equal_without_touching_codes() {
        let stats = Stats::default();
        let a = [1u64, 2, 3];
        let b = [1u64, 2, 3];
        let mut ac = Ovc::new(0, 1, 3);
        let mut bc = Ovc::new(0, 1, 3);
        let ord = compare_same_base(&a, &b, &mut ac, &mut bc, &stats);
        assert_eq!(ord, Ordering::Equal);
        assert_eq!(ac, Ovc::new(0, 1, 3));
        assert_eq!(bc, Ovc::new(0, 1, 3));
    }

    #[test]
    fn duplicate_codes_short_circuit() {
        let stats = Stats::default();
        let a = [1u64, 2];
        let b = [1u64, 2];
        let mut ac = Ovc::duplicate();
        let mut bc = Ovc::duplicate();
        let ord = compare_same_base(&a, &b, &mut ac, &mut bc, &stats);
        assert_eq!(ord, Ordering::Equal);
        assert_eq!(stats.col_value_cmps(), 0);
    }

    #[test]
    fn fence_comparisons_are_free() {
        let stats = Stats::default();
        let key = [5u64];
        let mut valid = Ovc::new(0, 5, 1);
        let mut late = Ovc::LATE_FENCE;
        let ord = compare_same_base(&key, &key, &mut valid, &mut late, &stats);
        assert_eq!(ord, Ordering::Less);
        assert_eq!(stats.col_value_cmps(), 0);
        assert!(late.is_late_fence(), "fences are never re-coded");

        let mut early = Ovc::EARLY_FENCE;
        let mut late2 = Ovc::LATE_FENCE;
        assert_eq!(
            compare_same_base(&key, &key, &mut early, &mut late2, &stats),
            Ordering::Less
        );
    }

    #[test]
    fn two_late_fences_compare_equal() {
        let stats = Stats::default();
        let key = [5u64];
        let mut a = Ovc::LATE_FENCE;
        let mut b = Ovc::LATE_FENCE;
        assert_eq!(
            compare_same_base(&key, &key, &mut a, &mut b, &stats),
            Ordering::Equal
        );
    }

    #[test]
    fn full_compare_sets_loser_code() {
        let stats = Stats::default();
        let a = [4u64, 4, 9];
        let b = [4u64, 5, 0];
        let mut ac = Ovc::EARLY_FENCE;
        let mut bc = Ovc::EARLY_FENCE;
        let ord = full_compare_set_loser(&a, &b, &mut ac, &mut bc, &stats);
        assert_eq!(ord, Ordering::Less);
        assert_eq!(bc, Ovc::new(1, 5, 3));
        assert!(ac.is_early_fence(), "winner untouched");
        assert_eq!(stats.col_value_cmps(), 2);
    }

    #[test]
    fn full_compare_equal_keys() {
        let stats = Stats::default();
        let a = [4u64, 4];
        let mut ac = Ovc::EARLY_FENCE;
        let mut bc = Ovc::EARLY_FENCE;
        assert_eq!(
            full_compare_set_loser(&a, &a.clone(), &mut ac, &mut bc, &stats),
            Ordering::Equal
        );
    }

    #[test]
    fn derive_code_matches_definition() {
        let stats = Stats::default();
        assert_eq!(
            derive_code(&[5, 7, 3, 9], &[5, 7, 3, 12], &stats),
            Ovc::new(3, 12, 4)
        );
        assert_eq!(
            derive_code(&[5, 9, 2, 7], &[5, 9, 2, 7], &stats),
            Ovc::duplicate()
        );
        assert_eq!(derive_code(&[1], &[2], &stats), Ovc::new(0, 2, 1));
    }

    #[test]
    fn saturated_codes_recheck_offset_column() {
        // Two distinct huge values clamp to the same code; the comparator
        // must re-compare the offset column itself and still order them.
        let stats = Stats::default();
        let big_a = crate::ovc::VALUE_MASK + 5; // clamps
        let big_b = crate::ovc::VALUE_MASK + 9; // clamps to the same field
        let a = [big_a, 0];
        let b = [big_b, 0];
        let mut ac = Ovc::new(0, big_a, 2);
        let mut bc = Ovc::new(0, big_b, 2);
        assert_eq!(ac, bc, "clamped codes collide");
        let ord = compare_same_base(&a, &b, &mut ac, &mut bc, &stats);
        assert_eq!(ord, Ordering::Less);
        assert_eq!(bc, Ovc::new(0, big_b, 2), "loser re-coded at offset 0");
        assert!(stats.col_value_cmps() >= 1);
    }

    #[test]
    fn spec_compare_agrees_with_plain_on_ascending_specs() {
        use crate::spec::SortSpec;
        let spec = SortSpec::asc(4);
        let stats = Stats::default();
        let b_key = [3u64, 7, 4, 7];
        let c_key = [3u64, 7, 4, 9];
        let mut b1 = Ovc::new(1, 7, 4);
        let mut c1 = Ovc::new(1, 7, 4);
        let mut b2 = b1;
        let mut c2 = c1;
        let plain = compare_same_base(&b_key, &c_key, &mut b1, &mut c1, &stats);
        let spec_ord = compare_same_base_spec(&b_key, &c_key, &mut b2, &mut c2, &spec, &stats);
        assert_eq!(plain, spec_ord);
        assert_eq!((b1, c1), (b2, c2), "identical recoding");
        assert_eq!(
            derive_code(&[5, 7, 3, 9], &[5, 7, 3, 12], &stats),
            derive_code_spec(&[5, 7, 3, 9], &[5, 7, 3, 12], &spec, &stats)
        );
    }

    #[test]
    fn spec_compare_orders_descending_keys() {
        use crate::spec::{Direction, SortSpec};
        let spec = SortSpec::with_dirs(&[Direction::Asc, Direction::Desc]);
        let stats = Stats::default();
        // Base (3, 9); B = (3, 7), C = (3, 2): desc on c1 puts B before C.
        let base = [3u64, 9];
        let b_key = [3u64, 7];
        let c_key = [3u64, 2];
        let mut b_code = derive_code_spec(&base, &b_key, &spec, &stats);
        let mut c_code = derive_code_spec(&base, &c_key, &spec, &stats);
        assert!(b_code < c_code, "desc-earlier key has the smaller code");
        let ord = compare_same_base_spec(&b_key, &c_key, &mut b_code, &mut c_code, &spec, &stats);
        assert_eq!(ord, Ordering::Less);
        // Equal codes force column comparisons that respect direction and
        // re-code the loser with the direction-encoded value.
        let d_key = [4u64, 8];
        let e_key = [4u64, 3];
        let mut d_code = derive_code_spec(&b_key, &d_key, &spec, &stats);
        let e_dup = derive_code_spec(&b_key, &d_key, &spec, &stats);
        let mut e_code = e_dup;
        let ord = compare_same_base_spec(&d_key, &e_key, &mut d_code, &mut e_code, &spec, &stats);
        assert_eq!(ord, Ordering::Less, "8 before 3 under desc");
        assert_eq!(e_code, Ovc::new(1, spec.code_value(1, 3), 2));
    }

    #[test]
    fn spec_compare_descending_lossy_end_recompares_offset_column() {
        use crate::spec::SortSpec;
        // Two huge descending values complement to the same (0) field; the
        // comparator must re-compare the offset column itself.
        let spec = SortSpec::desc(1);
        let stats = Stats::default();
        let a = [u64::MAX - 1];
        let b = [u64::MAX - 9];
        let mut ac = Ovc::new(0, spec.code_value(0, a[0]), 1);
        let mut bc = Ovc::new(0, spec.code_value(0, b[0]), 1);
        assert_eq!(ac, bc, "complemented clamped codes collide");
        let ord = compare_same_base_spec(&a, &b, &mut ac, &mut bc, &spec, &stats);
        assert_eq!(ord, Ordering::Less, "larger value is desc-earlier");
        assert!(stats.col_value_cmps() >= 1);
    }

    #[test]
    fn baseline_comparison_counts_columns() {
        let stats = Stats::default();
        assert_eq!(
            compare_keys_counted(&[1, 2, 3], &[1, 2, 4], &stats),
            Ordering::Less
        );
        assert_eq!(stats.col_value_cmps(), 3);
        assert_eq!(stats.row_cmps(), 1);
    }
}
