//! The paper's new theorem, its corollaries, and the filter-theorem
//! accumulator every order-preserving operator uses to produce output codes.
//!
//! **Theorem** (Section 4): for keys `A < B < C`, in ascending offset-value
//! coding `ovc(A,C) = max(ovc(A,B), ovc(B,C))`.
//!
//! **Filter corollary**: for a sorted chain `X0 < X1 < … < Xn`,
//! `ovc(X0,Xn) = max_{i=1..n} ovc(X(i-1),Xi)`.
//!
//! The corollary is what makes output-code computation O(1) integer work
//! per row: when an operator drops rows from a sorted stream (filter, semi
//! join, dedup, …), the code of each surviving row is the running `max` of
//! the codes of all rows consumed since the previous surviving row —
//! no column values are touched.

use crate::ovc::Ovc;

/// Combine two adjacent ascending codes per the theorem:
/// `ovc(A,C) = max(ovc(A,B), ovc(B,C))`.
///
/// [`Ovc::EARLY_FENCE`] is the identity element, which is why the
/// accumulator below can start "empty".
#[inline]
pub fn combine(ab: Ovc, bc: Ovc) -> Ovc {
    ab.max(bc)
}

/// Running filter-theorem accumulator.
///
/// Feed it the input code of **every** consumed row (dropped or kept); ask
/// it for the output code whenever a row is emitted.  Internally it is one
/// `max` per row — the "simple and efficient integer calculations" of
/// Section 4.1.
///
/// ```
/// use ovc_core::{Ovc, theorem::OvcAccumulator};
/// let mut acc = OvcAccumulator::new();
/// acc.absorb(Ovc::new(0, 5, 4));      // row dropped by the predicate
/// acc.absorb(Ovc::new(3, 12, 4));     // row dropped by the predicate
/// let out = acc.emit(Ovc::new(1, 8, 4)); // row kept
/// assert_eq!(out, Ovc::new(0, 5, 4)); // max of the three codes
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct OvcAccumulator {
    pending: Ovc,
}

impl OvcAccumulator {
    /// A fresh accumulator with no pending codes.
    #[inline]
    pub fn new() -> Self {
        OvcAccumulator {
            pending: Ovc::EARLY_FENCE,
        }
    }

    /// Absorb the input code of a row that does **not** produce output
    /// (failed predicate, duplicate, non-matching join row, …).
    #[inline]
    pub fn absorb(&mut self, code: Ovc) {
        debug_assert!(!code.is_late_fence());
        self.pending = self.pending.max(code);
    }

    /// Emit the output code for a surviving row whose input code is
    /// `kept`: the max of `kept` and everything absorbed since the last
    /// emit.  Resets the pending state.
    #[inline]
    pub fn emit(&mut self, kept: Ovc) -> Ovc {
        let out = self.pending.max(kept);
        self.pending = Ovc::EARLY_FENCE;
        out
    }

    /// The pending combined code without emitting (used by operators that
    /// need to peek, e.g. grouping carrying the first-row code forward).
    #[inline]
    pub fn pending(&self) -> Ovc {
        self.pending
    }

    /// Discard pending state (e.g. at a segment boundary).
    #[inline]
    pub fn reset(&mut self) {
        self.pending = Ovc::EARLY_FENCE;
    }
}

/// Clamp a code's offset to a shorter key prefix of `new_arity` columns
/// (out of `arity`), re-expressing it for the truncated sort key.
///
/// Used by projection (Section 4.2: "the offset must be limited to the
/// prefix that survives"), segmented sorting (Section 4.3: "all other
/// offsets must be cut to the size of the segmentation key"), grouping
/// (output arity = grouping-key length), and merge join (output codes are
/// over the join key).
///
/// A code whose offset is within the surviving prefix is unchanged except
/// for the arity re-basing; a code whose offset is at or past the prefix
/// becomes the duplicate code for the shorter key (the rows agree on the
/// entire surviving prefix).
#[inline]
pub fn clamp_to_prefix(code: Ovc, arity: usize, new_arity: usize) -> Ovc {
    debug_assert!(new_arity <= arity);
    if !code.is_valid() {
        return code;
    }
    let offset = code.offset(arity);
    if offset >= new_arity {
        Ovc::duplicate()
    } else {
        Ovc::new(offset, code.value(), new_arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::derive_code;
    use crate::stats::Stats;

    /// The theorem, checked on the three cases of its proof using the
    /// paper's Table 1 examples (Section 4, "Examples" paragraph).
    #[test]
    fn theorem_case_i_first_rows_of_table1() {
        // Rows 1..3 of Table 1; removing row 2 leaves row 3's code intact.
        let stats = Stats::default();
        let r1 = [5u64, 7, 3, 9];
        let r2 = [5u64, 7, 3, 12];
        let r3 = [5u64, 8, 4, 6];
        let ab = derive_code(&r1, &r2, &stats); // (3,12)
        let bc = derive_code(&r2, &r3, &stats); // (1,8)
        let ac = derive_code(&r1, &r3, &stats); // (1,8)
        assert_eq!(combine(ab, bc), ac);
        assert_eq!(ac, bc, "case (i): pre(A,B) > pre(B,C)");
    }

    #[test]
    fn theorem_case_ii_removed_second_to_last_row() {
        // "if the second-to-last row were removed in Table 1, the codes of
        // the last row would be those of the removed row."
        let stats = Stats::default();
        let a = [5u64, 9, 2, 7];
        let b = [5u64, 9, 3, 4];
        let c = [5u64, 9, 3, 7];
        let ab = derive_code(&a, &b, &stats); // (2,3)
        let bc = derive_code(&b, &c, &stats); // (3,7)
        let ac = derive_code(&a, &c, &stats); // (2,3)
        assert_eq!(combine(ab, bc), ac);
        assert_eq!(ac, ab, "case (ii): pre(A,B) < pre(B,C)");
    }

    #[test]
    fn theorem_case_iii_removed_third_row() {
        // "if the third row were removed in Table 1, the codes of the
        // fourth row would remain unchanged."
        let stats = Stats::default();
        let a = [5u64, 7, 3, 12];
        let b = [5u64, 8, 4, 6];
        let c = [5u64, 9, 2, 7];
        let ab = derive_code(&a, &b, &stats); // (1,8)
        let bc = derive_code(&b, &c, &stats); // (1,9)
        let ac = derive_code(&a, &c, &stats); // (1,9)
        assert_eq!(combine(ab, bc), ac);
        assert_eq!(ac, bc, "case (iii): equal prefixes, values decide");
    }

    /// Proposition: successive codes in a sorted stream are never equal.
    #[test]
    fn proposition_no_equal_successive_codes() {
        let stats = Stats::default();
        let rows = crate::table1::rows();
        let mut prev_code: Option<Ovc> = None;
        for w in rows.windows(2) {
            let code = derive_code(w[0].key(4), w[1].key(4), &stats);
            if let Some(p) = prev_code {
                // The proposition applies to strictly increasing keys
                // (A != B or B != C); Table 1 contains one duplicate pair,
                // whose neighbour codes still differ.
                assert_ne!(p, code, "ovc(A,B) == ovc(B,C) violates the proposition");
            }
            prev_code = Some(code);
        }
    }

    #[test]
    fn filter_corollary_over_whole_table1() {
        // max over the chain equals ovc(first, last) directly.
        let stats = Stats::default();
        let rows = crate::table1::rows();
        let mut acc = OvcAccumulator::new();
        for w in rows.windows(2) {
            acc.absorb(derive_code(w[0].key(4), w[1].key(4), &stats));
        }
        let combined = acc.emit(Ovc::EARLY_FENCE);
        let direct = derive_code(rows[0].key(4), rows[6].key(4), &stats);
        assert_eq!(combined, direct);
    }

    #[test]
    fn accumulator_identity_and_reset() {
        let mut acc = OvcAccumulator::new();
        let c = Ovc::new(1, 9, 4);
        assert_eq!(acc.emit(c), c, "empty accumulator is the identity");
        acc.absorb(Ovc::new(0, 3, 4));
        acc.reset();
        assert_eq!(acc.emit(c), c, "reset discards pending codes");
        assert_eq!(acc.pending(), Ovc::EARLY_FENCE);
    }

    #[test]
    fn clamp_to_prefix_behaviour() {
        // Offset inside the surviving prefix: value kept, arity re-based.
        let code = Ovc::new(1, 8, 4);
        let clamped = clamp_to_prefix(code, 4, 2);
        assert_eq!(clamped.offset(2), 1);
        assert_eq!(clamped.value(), 8);
        // Offset at/past the prefix: duplicate under the shorter key.
        assert!(clamp_to_prefix(Ovc::new(2, 3, 4), 4, 2).is_duplicate());
        assert!(clamp_to_prefix(Ovc::new(3, 7, 4), 4, 2).is_duplicate());
        assert!(clamp_to_prefix(Ovc::duplicate(), 4, 2).is_duplicate());
        // Fences pass through.
        assert!(clamp_to_prefix(Ovc::LATE_FENCE, 4, 2).is_late_fence());
    }

    #[test]
    fn clamp_preserves_relative_order_within_prefix() {
        let a = Ovc::new(0, 5, 4);
        let b = Ovc::new(1, 8, 4);
        let (ca, cb) = (clamp_to_prefix(a, 4, 2), clamp_to_prefix(b, 4, 2));
        assert!(ca > cb, "order among surviving offsets is preserved");
    }
}
