//! Descending offset-value codes and the dual (`min`) theorem.
//!
//! Table 1 of the paper shows both encodings.  Descending codes store the
//! *actual* offset and the *negated* value (`domain − value` in the paper's
//! decimal rendering), so for two keys coded relative to the same base the
//! **larger** code is earlier in the (still ascending) sort sequence: a
//! longer shared prefix means a larger offset, and on equal offsets a
//! smaller data value means a larger negated value.
//!
//! Because "earlier" flips from smaller to larger, the combination theorem
//! dualizes: `ovc_desc(A,C) = min(ovc_desc(A,B), ovc_desc(B,C))`
//! (Section 4, Theorem).  IBM's CFC instruction implements descending
//! normalized-key codes of this shape (Section 3).
//!
//! The ascending encoding in [`crate::ovc`] is what the execution operators
//! use; this module exists to reproduce the paper's tables in full and to
//! property-test the dual theorem.

use crate::ovc::{clamp_value, VALUE_BITS, VALUE_MASK};
use crate::row::Value;
use crate::stats::Stats;

const VALID_TAG: u64 = 1u64 << 62;

/// A descending offset-value code.  **Larger code = earlier** in the sort
/// sequence.  The late fence is therefore the smallest representation and
/// the early fence the largest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DescOvc(u64);

impl DescOvc {
    /// Early fence for descending coding: larger than every valid code.
    pub const EARLY_FENCE: DescOvc = DescOvc(u64::MAX);
    /// Late fence for descending coding: smaller than every valid code.
    pub const LATE_FENCE: DescOvc = DescOvc(0);

    /// Construct from offset, value at the offset, and arity.
    pub fn new(offset: usize, value: Value, arity: usize) -> DescOvc {
        debug_assert!(offset <= arity);
        if offset == arity {
            return DescOvc::duplicate(arity);
        }
        let negated = VALUE_MASK - clamp_value(value);
        DescOvc(VALID_TAG | ((offset as u64) << VALUE_BITS) | negated)
    }

    /// The duplicate code: offset equals arity, empty value field.  This is
    /// the **largest** valid descending code (duplicates are "as early as
    /// possible" behind their base), matching Table 1's `400`.
    pub fn duplicate(arity: usize) -> DescOvc {
        DescOvc(VALID_TAG | ((arity as u64) << VALUE_BITS) | VALUE_MASK)
    }

    /// Code of the first row of a stream (offset 0 relative to "−∞").
    pub fn initial(key: &[Value]) -> DescOvc {
        if key.is_empty() {
            DescOvc::duplicate(0)
        } else {
            DescOvc::new(0, key[0], key.len())
        }
    }

    /// Is this a valid (non-fence) code?
    pub fn is_valid(self) -> bool {
        (self.0 >> 62) == 0b01
    }

    /// The stored offset.
    pub fn offset(self) -> usize {
        ((self.0 >> VALUE_BITS) & crate::ovc::OFFSET_FIELD_MASK) as usize
    }

    /// The un-negated (clamped) value.
    pub fn value(self) -> Value {
        VALUE_MASK - (self.0 & VALUE_MASK)
    }

    /// Does this code mark a duplicate key?
    pub fn is_duplicate(self, arity: usize) -> bool {
        self.is_valid() && self.offset() == arity
    }

    /// Render the code as the paper's Table 1 does for a decimal domain:
    /// `offset * 100 + (domain − value)`, duplicates as `offset * 100`.
    pub fn paper_decimal(self, arity: usize, domain: u64) -> u64 {
        debug_assert!(self.is_valid());
        let off = self.offset() as u64;
        if self.offset() == arity {
            off * 100
        } else {
            off * 100 + (domain - self.value())
        }
    }
}

/// Dual combination theorem for descending codes:
/// `ovc(A,C) = min(ovc(A,B), ovc(B,C))`.
#[inline]
pub fn combine_desc(ab: DescOvc, bc: DescOvc) -> DescOvc {
    ab.min(bc)
}

/// Exact descending code of `succ` relative to `pred` (`pred <= succ`).
pub fn derive_desc_code(pred_key: &[Value], succ_key: &[Value], stats: &Stats) -> DescOvc {
    let arity = succ_key.len();
    for i in 0..arity {
        stats.count_col_cmp();
        if pred_key[i] != succ_key[i] {
            debug_assert!(pred_key[i] < succ_key[i]);
            return DescOvc::new(i, succ_key[i], arity);
        }
    }
    DescOvc::duplicate(arity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_descending_codes() {
        // The "Descending OVC" column of Table 1: 95, 388, 192, 191, 400,
        // 297, 393 (domain 1..99, arity 4).
        let rows = crate::table1::rows();
        let expected = [95u64, 388, 192, 191, 400, 297, 393];
        let stats = Stats::default();
        let mut prev: Option<&crate::row::Row> = None;
        for (row, want) in rows.iter().zip(expected) {
            let code = match prev {
                None => DescOvc::initial(row.key(4)),
                Some(p) => derive_desc_code(p.key(4), row.key(4), &stats),
            };
            assert_eq!(code.paper_decimal(4, 100), want);
            prev = Some(row);
        }
    }

    #[test]
    fn larger_code_is_earlier() {
        // Higher offset -> earlier -> larger code.
        let deep = DescOvc::new(3, 50, 4);
        let shallow = DescOvc::new(1, 50, 4);
        assert!(deep > shallow);
        // Same offset: smaller value -> earlier -> larger code.
        let small_val = DescOvc::new(2, 10, 4);
        let big_val = DescOvc::new(2, 90, 4);
        assert!(small_val > big_val);
        // Duplicate is the earliest (largest) valid code.
        assert!(DescOvc::duplicate(4) > deep);
    }

    #[test]
    fn fences_bracket_codes() {
        let c = DescOvc::new(0, 5, 4);
        assert!(DescOvc::LATE_FENCE < c);
        assert!(c < DescOvc::EARLY_FENCE);
    }

    #[test]
    fn dual_theorem_on_table1_cases() {
        let stats = Stats::default();
        // Case (i) analogue with rows 1..3 of Table 1.
        let r1 = [5u64, 7, 3, 9];
        let r2 = [5u64, 7, 3, 12];
        let r3 = [5u64, 8, 4, 6];
        let ab = derive_desc_code(&r1, &r2, &stats);
        let bc = derive_desc_code(&r2, &r3, &stats);
        let ac = derive_desc_code(&r1, &r3, &stats);
        assert_eq!(combine_desc(ab, bc), ac);
    }

    #[test]
    fn round_trip() {
        let c = DescOvc::new(2, 42, 4);
        assert_eq!(c.offset(), 2);
        assert_eq!(c.value(), 42);
        assert!(!c.is_duplicate(4));
        assert!(DescOvc::duplicate(4).is_duplicate(4));
    }
}
