//! Exact code derivation and validation for sorted data.
//!
//! `derive_codes` is the row-by-row, column-by-column method the paper
//! calls too expensive for per-operator use — we keep it as (a) the
//! reference implementation that operators are property-tested against,
//! (b) the one-linear-pass code priming step after an in-memory quicksort,
//! and (c) the tool ordered scans use at load time (Section 4.12: storage
//! structures "preserve the effort for comparisons spent during index
//! creation").

use crate::compare::{derive_code, derive_code_spec};
use crate::ovc::Ovc;
use crate::row::Row;
use crate::spec::SortSpec;
use crate::stats::Stats;

/// Derive the exact ascending code of every row in an already-sorted slice
/// (first row coded relative to "−∞").  Uninstrumented convenience.
pub fn derive_codes(rows: &[Row], key_len: usize) -> Vec<Ovc> {
    let stats = Stats::default();
    derive_codes_counted(rows, key_len, &stats)
}

/// As [`derive_codes`], counting every column-value comparison in `stats`.
pub fn derive_codes_counted(rows: &[Row], key_len: usize, stats: &Stats) -> Vec<Ovc> {
    let mut codes = Vec::with_capacity(rows.len());
    let mut prev: Option<&Row> = None;
    for row in rows {
        let code = match prev {
            None => Ovc::initial(row.key(key_len)),
            Some(p) => derive_code(p.key(key_len), row.key(key_len), stats),
        };
        codes.push(code);
        prev = Some(row);
    }
    codes
}

/// Is the slice sorted ascending on the first `key_len` columns?
pub fn is_sorted(rows: &[Row], key_len: usize) -> bool {
    rows.windows(2)
        .all(|w| w[0].key(key_len) <= w[1].key(key_len))
}

/// Direction-aware [`derive_codes`]: exact codes of an already
/// spec-ordered slice, first row relative to "−∞".  Requires a
/// leading-prefix spec (the coded-stream contract).
pub fn derive_codes_spec(rows: &[Row], spec: &SortSpec) -> Vec<Ovc> {
    let stats = Stats::default();
    derive_codes_spec_counted(rows, spec, &stats)
}

/// As [`derive_codes_spec`], counting column comparisons in `stats`.
pub fn derive_codes_spec_counted(rows: &[Row], spec: &SortSpec, stats: &Stats) -> Vec<Ovc> {
    assert!(
        spec.is_prefix(),
        "coded streams require leading-prefix sort specs, got {spec}"
    );
    let k = spec.len();
    let mut codes = Vec::with_capacity(rows.len());
    let mut prev: Option<&Row> = None;
    for row in rows {
        let code = match prev {
            None => spec.initial_code(row.key(k)),
            Some(p) => derive_code_spec(p.key(k), row.key(k), spec, stats),
        };
        codes.push(code);
        prev = Some(row);
    }
    codes
}

/// Is the slice sorted under `spec` (leading-prefix specs only)?
pub fn is_sorted_spec(rows: &[Row], spec: &SortSpec) -> bool {
    let k = spec.len();
    rows.windows(2)
        .all(|w| spec.cmp_keys(w[0].key(k), w[1].key(k)) != std::cmp::Ordering::Greater)
}

/// Check that a coded sequence is sorted **and** every code is exact
/// (maximal shared prefix with the predecessor) — the stream contract from
/// DESIGN.md §3.3.  Returns the index of the first violation.
pub fn find_code_violation(pairs: &[(Row, Ovc)], key_len: usize) -> Option<usize> {
    let stats = Stats::default();
    let mut prev: Option<&Row> = None;
    for (i, (row, code)) in pairs.iter().enumerate() {
        let expect = match prev {
            None => Ovc::initial(row.key(key_len)),
            Some(p) => {
                if p.key(key_len) > row.key(key_len) {
                    return Some(i); // not sorted
                }
                derive_code(p.key(key_len), row.key(key_len), &stats)
            }
        };
        if *code != expect {
            return Some(i);
        }
        prev = Some(row);
    }
    None
}

/// Panic with a precise message if the coded sequence violates the stream
/// contract.  Test helper used across all crates.
pub fn assert_codes_exact(pairs: &[(Row, Ovc)], key_len: usize) {
    if let Some(i) = find_code_violation(pairs, key_len) {
        let stats = Stats::default();
        let expect = if i == 0 {
            Ovc::initial(pairs[0].0.key(key_len))
        } else {
            derive_code(pairs[i - 1].0.key(key_len), pairs[i].0.key(key_len), &stats)
        };
        panic!(
            "code violation at row {i}: row={:?} code={:?} expected={:?} (prev={:?})",
            pairs[i].0,
            pairs[i].1,
            expect,
            i.checked_sub(1).map(|j| &pairs[j].0),
        );
    }
}

/// Spec-aware [`find_code_violation`]: first index where the sequence
/// breaks spec order or carries an inexact code.
pub fn find_code_violation_spec(pairs: &[(Row, Ovc)], spec: &SortSpec) -> Option<usize> {
    let k = spec.len();
    find_code_violation_slices(pairs.iter().map(|(row, code)| (row.key(k), *code)), spec)
}

/// Borrow-based [`find_code_violation_spec`] over `(key columns, code)`
/// pairs: validates a stored representation (a flat run, a column slice)
/// in place, without cloning a single row.  `key` slices must carry at
/// least `spec.len()` leading key columns.
pub fn find_code_violation_slices<'a, I>(pairs: I, spec: &SortSpec) -> Option<usize>
where
    I: IntoIterator<Item = (&'a [u64], Ovc)>,
{
    let stats = Stats::default();
    let k = spec.len();
    let mut prev: Option<&[u64]> = None;
    for (i, (key, code)) in pairs.into_iter().enumerate() {
        let key = &key[..k];
        let expect = match prev {
            None => spec.initial_code(key),
            Some(p) => {
                if spec.cmp_keys(p, key) == std::cmp::Ordering::Greater {
                    return Some(i); // not sorted under the spec
                }
                derive_code_spec(p, key, spec, &stats)
            }
        };
        if code != expect {
            return Some(i);
        }
        prev = Some(key);
    }
    None
}

/// Spec-aware [`assert_codes_exact`]: panics with a precise message if
/// the coded sequence violates its spec's stream contract.
pub fn assert_codes_exact_spec(pairs: &[(Row, Ovc)], spec: &SortSpec) {
    if let Some(i) = find_code_violation_spec(pairs, spec) {
        let stats = Stats::default();
        let k = spec.len();
        let expect = if i == 0 {
            spec.initial_code(pairs[0].0.key(k))
        } else {
            derive_code_spec(pairs[i - 1].0.key(k), pairs[i].0.key(k), spec, &stats)
        };
        panic!(
            "code violation at row {i} under {spec}: row={:?} code={:?} expected={:?} (prev={:?})",
            pairs[i].0,
            pairs[i].1,
            expect,
            i.checked_sub(1).map(|j| &pairs[j].0),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_matches_table1() {
        let rows = crate::table1::rows();
        let codes = derive_codes(&rows, crate::table1::ARITY);
        assert_eq!(codes, crate::table1::asc_codes());
    }

    #[test]
    fn derive_counts_at_most_n_times_k_comparisons() {
        let rows = crate::table1::rows();
        let stats = Stats::default();
        let _ = derive_codes_counted(&rows, 4, &stats);
        // First row is free; each subsequent row costs at most K.
        assert!(stats.col_value_cmps() <= (rows.len() as u64 - 1) * 4);
    }

    #[test]
    fn is_sorted_detects_order() {
        let rows = crate::table1::rows();
        assert!(is_sorted(&rows, 4));
        let mut bad = rows;
        bad.swap(0, 6);
        assert!(!is_sorted(&bad, 4));
    }

    #[test]
    fn violation_checker_accepts_exact_codes() {
        let rows = crate::table1::rows();
        let codes = derive_codes(&rows, 4);
        let pairs: Vec<_> = rows.into_iter().zip(codes).collect();
        assert_eq!(find_code_violation(&pairs, 4), None);
        assert_codes_exact(&pairs, 4);
    }

    #[test]
    fn violation_checker_rejects_inexact_codes() {
        let rows = crate::table1::rows();
        let mut codes = derive_codes(&rows, 4);
        codes[2] = Ovc::new(0, 5, 4); // over-approximated offset
        let pairs: Vec<_> = rows.into_iter().zip(codes).collect();
        assert_eq!(find_code_violation(&pairs, 4), Some(2));
    }

    #[test]
    fn violation_checker_rejects_unsorted_input() {
        let rows = crate::table1::rows();
        let codes = derive_codes(&rows, 4);
        let mut pairs: Vec<_> = rows.into_iter().zip(codes).collect();
        pairs.swap(1, 5);
        assert!(find_code_violation(&pairs, 4).is_some());
    }

    #[test]
    fn empty_and_single_row_inputs() {
        assert!(derive_codes(&[], 3).is_empty());
        let one = vec![Row::new(vec![9, 9, 9])];
        let codes = derive_codes(&one, 3);
        assert_eq!(codes, vec![Ovc::initial(&[9, 9, 9])]);
    }

    #[test]
    fn spec_derivation_matches_plain_on_ascending_specs() {
        let rows = crate::table1::rows();
        let spec = SortSpec::asc(4);
        assert_eq!(derive_codes_spec(&rows, &spec), derive_codes(&rows, 4));
        assert!(is_sorted_spec(&rows, &spec));
        let pairs: Vec<_> = rows
            .iter()
            .cloned()
            .zip(derive_codes_spec(&rows, &spec))
            .collect();
        assert_eq!(find_code_violation_spec(&pairs, &spec), None);
        assert_codes_exact_spec(&pairs, &spec);
    }

    #[test]
    fn spec_derivation_validates_descending_streams() {
        let spec = SortSpec::desc(2);
        let rows: Vec<Row> = [[9u64, 4], [9, 1], [3, 7], [3, 7], [1, 0]]
            .iter()
            .map(|c| Row::new(c.to_vec()))
            .collect();
        assert!(is_sorted_spec(&rows, &spec));
        assert!(!is_sorted(&rows, 2), "not ascending-sorted");
        let codes = derive_codes_spec(&rows, &spec);
        assert!(codes[3].is_duplicate(), "repeated row codes as duplicate");
        let pairs: Vec<_> = rows.iter().cloned().zip(codes).collect();
        assert_codes_exact_spec(&pairs, &spec);
        // Codes must ascend with the stream position where they differ
        // from their base — spot-check the violation finder catches a
        // mis-ordered swap.
        let mut bad = pairs;
        bad.swap(0, 4);
        assert!(find_code_violation_spec(&bad, &spec).is_some());
    }

    #[test]
    fn all_duplicate_rows() {
        let rows = vec![Row::new(vec![1, 2]); 5];
        let codes = derive_codes(&rows, 2);
        assert_eq!(codes[0], Ovc::initial(&[1, 2]));
        for c in &codes[1..] {
            assert!(c.is_duplicate());
        }
    }
}
