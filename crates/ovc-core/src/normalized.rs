//! Offset-value coding with byte offsets in normalized keys.
//!
//! Section 4.1: the derivation rules apply "mutatis mutandis … for
//! offset-value coding using byte offsets within normalized keys", and
//! Section 3 recalls that IBM's CFC "compare and form codeword"
//! instruction "supports offset-value coding for descending normalized
//! keys using blocks of bytes as values and counts of blocks as offsets".
//!
//! A *normalized key* is an order-preserving byte string: comparing two
//! normalized keys bytewise equals comparing the original multi-column
//! keys column by column.  Codes over byte offsets use the **descending**
//! layout (offset stored directly, value negated) because byte strings may
//! have different lengths, which the ascending `arity − offset` field
//! cannot express uniformly.  The dual theorem
//! (`ovc(A,C) = min(ovc(A,B), ovc(B,C))`) therefore governs combination.

use crate::ovc::{OFFSET_FIELD_MASK, VALUE_BITS, VALUE_MASK};
use crate::row::Value;
use crate::stats::Stats;

const VALID_TAG: u64 = 1u64 << 62;

/// Maximum normalized-key length in bytes (the offset field width).
pub const MAX_KEY_BYTES: usize = OFFSET_FIELD_MASK as usize - 1;

/// Normalize a multi-column `u64` key into an order-preserving byte
/// string: big-endian column concatenation.
pub fn normalize(key: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() * 8);
    for &c in key {
        out.extend_from_slice(&c.to_be_bytes());
    }
    out
}

/// A descending byte-offset code over normalized keys.
/// **Larger code = earlier** in the sort sequence, like
/// [`crate::desc::DescOvc`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ByteOvc(u64);

impl ByteOvc {
    /// Early fence (largest representation).
    pub const EARLY_FENCE: ByteOvc = ByteOvc(u64::MAX);
    /// Late fence (smallest representation).
    pub const LATE_FENCE: ByteOvc = ByteOvc(0);

    /// Code from a byte offset and the byte at that offset.
    pub fn new(offset: usize, byte: u8) -> ByteOvc {
        debug_assert!(offset <= MAX_KEY_BYTES);
        let negated = VALUE_MASK - byte as u64;
        ByteOvc(VALID_TAG | ((offset as u64) << VALUE_BITS) | negated)
    }

    /// Duplicate code for a key of `len` bytes: the entire key is shared.
    /// Encoded past every in-key offset so duplicates sort earliest among
    /// codes with offsets `>= len`.
    pub fn duplicate(len: usize) -> ByteOvc {
        debug_assert!(len <= MAX_KEY_BYTES);
        ByteOvc(VALID_TAG | (((len as u64) + 1) << VALUE_BITS) | VALUE_MASK)
    }

    /// Code of a stream's first key (relative to "−∞"): byte offset 0.
    pub fn initial(key: &[u8]) -> ByteOvc {
        if key.is_empty() {
            ByteOvc::duplicate(0)
        } else {
            ByteOvc::new(0, key[0])
        }
    }

    /// Is this a valid (non-fence) code?
    pub fn is_valid(self) -> bool {
        (self.0 >> 62) == 0b01
    }

    /// The stored byte offset (duplicates report `len + 1`).
    pub fn offset(self) -> usize {
        ((self.0 >> VALUE_BITS) & OFFSET_FIELD_MASK) as usize
    }

    /// The un-negated byte value.
    pub fn byte(self) -> u8 {
        (VALUE_MASK - (self.0 & VALUE_MASK)) as u8
    }

    /// Does this code mark a duplicate of a key with `len` bytes?
    pub fn is_duplicate(self, len: usize) -> bool {
        self.is_valid() && self.offset() == len + 1
    }
}

/// Exact byte-offset code of `succ` relative to `pred`
/// (`pred <= succ` bytewise; shorter prefix sorts first).
pub fn derive_byte_code(pred: &[u8], succ: &[u8], stats: &Stats) -> ByteOvc {
    let n = pred.len().min(succ.len());
    for i in 0..n {
        stats.count_col_cmp();
        if pred[i] != succ[i] {
            debug_assert!(pred[i] < succ[i]);
            return ByteOvc::new(i, succ[i]);
        }
    }
    if succ.len() > n {
        // `pred` is a strict prefix: the first unshared byte of `succ`.
        ByteOvc::new(n, succ[n])
    } else {
        debug_assert_eq!(pred.len(), succ.len(), "pred must not sort after succ");
        ByteOvc::duplicate(succ.len())
    }
}

/// Dual combination theorem for byte-offset codes:
/// `ovc(A,C) = min(ovc(A,B), ovc(B,C))`.
#[inline]
pub fn combine_bytes(ab: ByteOvc, bc: ByteOvc) -> ByteOvc {
    ab.min(bc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_preserves_order() {
        let keys = [
            vec![0u64, 0],
            vec![0, u64::MAX],
            vec![1, 0],
            vec![256, 3],
            vec![u64::MAX, 0],
        ];
        for w in keys.windows(2) {
            assert!(normalize(&w[0]) < normalize(&w[1]));
        }
    }

    #[test]
    fn byte_codes_on_table1() {
        // Table 1's second row differs from the first in column 3
        // (values 9 vs 12): normalized, the first differing byte is the
        // last byte of column 3 — byte offset 31.
        let stats = Stats::default();
        let a = normalize(&[5, 7, 3, 9]);
        let b = normalize(&[5, 7, 3, 12]);
        let code = derive_byte_code(&a, &b, &stats);
        assert_eq!(code.offset(), 31);
        assert_eq!(code.byte(), 12);
        // The duplicate row yields the duplicate code.
        let c = normalize(&[5, 9, 2, 7]);
        assert!(derive_byte_code(&c, &c, &stats).is_duplicate(32));
    }

    #[test]
    fn larger_code_is_earlier() {
        // Deeper shared prefix -> larger code -> earlier.
        let deep = ByteOvc::new(9, 200);
        let shallow = ByteOvc::new(2, 1);
        assert!(deep > shallow);
        // Same offset: smaller byte -> earlier -> larger code.
        assert!(ByteOvc::new(3, 10) > ByteOvc::new(3, 11));
        // Duplicates are the earliest codes for their length.
        assert!(ByteOvc::duplicate(16) > ByteOvc::new(15, 0));
        // Fences bracket everything.
        assert!(ByteOvc::LATE_FENCE < ByteOvc::new(0, 255));
        assert!(ByteOvc::new(31, 0) < ByteOvc::EARLY_FENCE);
    }

    #[test]
    fn dual_theorem_on_byte_codes() {
        let stats = Stats::default();
        let triples = [
            ([1u64, 2], [1u64, 3], [2u64, 0]),
            ([0, 0], [0, 0], [0, 1]),
            ([5, 5], [5, 5], [5, 5]),
            ([1, 0], [1, 255], [1, 256]),
        ];
        for (a, b, c) in triples {
            let (na, nb, nc) = (normalize(&a), normalize(&b), normalize(&c));
            let ab = derive_byte_code(&na, &nb, &stats);
            let bc = derive_byte_code(&nb, &nc, &stats);
            let ac = derive_byte_code(&na, &nc, &stats);
            assert_eq!(combine_bytes(ab, bc), ac, "{a:?} {b:?} {c:?}");
        }
    }

    #[test]
    fn variable_length_keys() {
        // Normalized keys of different lengths (e.g. truncated suffixes):
        // a strict prefix sorts first and the code points at the first
        // unshared byte.
        let stats = Stats::default();
        let short = vec![1u8, 2, 3];
        let long = vec![1u8, 2, 3, 4];
        let code = derive_byte_code(&short, &long, &stats);
        assert_eq!(code.offset(), 3);
        assert_eq!(code.byte(), 4);
        assert!(!code.is_duplicate(4));
    }

    #[test]
    fn empty_keys() {
        assert!(ByteOvc::initial(&[]).is_duplicate(0));
        let stats = Stats::default();
        assert!(derive_byte_code(&[], &[], &stats).is_duplicate(0));
    }

    #[test]
    fn byte_code_order_agrees_with_key_order() {
        // For keys B, C >= A coded relative to A: code order must match
        // key order whenever the codes differ.
        let stats = Stats::default();
        let mut keys: Vec<Vec<u64>> =
            vec![vec![1, 1], vec![1, 2], vec![1, 258], vec![2, 0], vec![2, 1]];
        keys.sort();
        let base = normalize(&keys[0]);
        for i in 1..keys.len() {
            for j in (i + 1)..keys.len() {
                let cb = derive_byte_code(&base, &normalize(&keys[i]), &stats);
                let cc = derive_byte_code(&base, &normalize(&keys[j]), &stats);
                if cb != cc {
                    assert!(cb > cc, "earlier key must have larger desc code");
                }
            }
        }
    }
}
