//! The paper's Table 1 as a shared fixture.
//!
//! "Offset-value codes in a sorted file or stream": seven rows with four
//! key columns each (domain 1…99), sorted ascending on all columns, with
//! the expected descending and ascending codes.  Examples, unit tests,
//! property tests, and the figure harness all reuse this data, so the
//! reproduction of the paper's running example lives in exactly one place.

use crate::ovc::Ovc;
use crate::row::Row;

/// Sort-key arity of the Table 1 rows.
pub const ARITY: usize = 4;

/// Column-value domain used by the paper's decimal rendering.
pub const DOMAIN: u64 = 100;

/// The seven rows of Table 1, already in ascending order.
pub fn rows() -> Vec<Row> {
    vec![
        Row::new(vec![5, 7, 3, 9]),
        Row::new(vec![5, 7, 3, 12]),
        Row::new(vec![5, 8, 4, 6]),
        Row::new(vec![5, 9, 2, 7]),
        Row::new(vec![5, 9, 2, 7]),
        Row::new(vec![5, 9, 3, 4]),
        Row::new(vec![5, 9, 3, 7]),
    ]
}

/// The expected ascending `(offset, value)` pairs; the duplicate row is
/// `(4, None)`.
pub fn asc_offset_value() -> Vec<(usize, Option<u64>)> {
    vec![
        (0, Some(5)),
        (3, Some(12)),
        (1, Some(8)),
        (1, Some(9)),
        (4, None),
        (2, Some(3)),
        (3, Some(7)),
    ]
}

/// The expected ascending codes in the paper's decimal rendering
/// (`(arity − offset) · 100 + value`): 405, 112, 308, 309, 0, 203, 107.
pub fn asc_paper_decimals() -> Vec<u64> {
    vec![405, 112, 308, 309, 0, 203, 107]
}

/// The expected descending codes in the paper's decimal rendering
/// (`offset · 100 + (domain − value)`): 95, 388, 192, 191, 400, 297, 393.
pub fn desc_paper_decimals() -> Vec<u64> {
    vec![95, 388, 192, 191, 400, 297, 393]
}

/// The expected ascending [`Ovc`] values for the seven rows.
pub fn asc_codes() -> Vec<Ovc> {
    asc_offset_value()
        .into_iter()
        .map(|(off, val)| match val {
            Some(v) => Ovc::new(off, v, ARITY),
            None => Ovc::duplicate(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::derive_codes;

    #[test]
    fn fixture_is_sorted() {
        let rows = rows();
        for w in rows.windows(2) {
            assert!(w[0].key(ARITY) <= w[1].key(ARITY));
        }
    }

    #[test]
    fn derived_codes_match_table1_ascending() {
        let rows = rows();
        let codes = derive_codes(&rows, ARITY);
        assert_eq!(codes, asc_codes());
        let decimals: Vec<u64> = codes.iter().map(|c| c.paper_decimal()).collect();
        assert_eq!(decimals, asc_paper_decimals());
    }

    #[test]
    fn offsets_match_table1() {
        let rows = rows();
        let codes = derive_codes(&rows, ARITY);
        for (code, (off, _)) in codes.iter().zip(asc_offset_value()) {
            assert_eq!(code.offset(ARITY), off);
        }
    }
}
