//! The threaded query server: accept loop, bounded session pool,
//! request routing, streaming execution, graceful shutdown.
//!
//! ## Threading model
//!
//! One listener thread runs [`Server::run`]; every accepted connection
//! gets its own session thread (keep-alive: a session serves many
//! requests).  The pool is bounded by [`ServerConfig::max_sessions`] —
//! connection number `max+1` receives `503` and is closed, so a client
//! herd degrades loudly instead of queueing invisibly.  All state the
//! sessions share ([`crate::metrics::ServerMetrics`], the catalog, the
//! rate limiter) is behind `Arc`, which is exactly what the
//! `Arc<Stats>`/atomic refactor of this crate's PR bought: a physical
//! plan and its coded stream are `Send`, so a query can execute entirely
//! on the connection's thread.
//!
//! ## Graceful shutdown
//!
//! [`ServerHandle::shutdown`] (or `POST /shutdown`) sets a flag and
//! self-connects to wake the blocking accept.  Sessions notice the flag
//! **between** requests only — a query mid-stream always runs to its
//! trailer frame, so shutdown drains in-flight work without dropping a
//! batch.  [`Server::run`] returns after every session thread has been
//! joined.

use std::io::{BufReader, BufWriter};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use ovc_bench::snapshot::Json;
use ovc_core::ctx::ExecError;
use ovc_core::{QueryCtx, Stats, StatsSnapshot};
use ovc_plan::{
    execute_ctx, execute_ctx_profiled, Catalog, ExecOptions, Output, Planner, PlannerConfig,
};

use crate::http::{read_request, write_response, ChunkedWriter, ParseError, Request};
use crate::metrics::ServerMetrics;
use crate::ratelimit::{Admission, RateLimitConfig, RateLimiter};
use crate::wire;

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Maximum concurrent session threads; further connections get 503.
    pub max_sessions: usize,
    /// Rows per streamed `batch` frame.
    pub batch_rows: usize,
    /// Per-IP token-bucket policy.
    pub rate_limit: RateLimitConfig,
    /// Planner knobs applied to every served query (memory budget,
    /// fan-in, degree of parallelism, executor batch size).
    pub planner: PlannerConfig,
    /// How long a session waits for the next request before re-checking
    /// the shutdown flag (liveness knob; correctness does not depend on
    /// it).
    pub poll_interval: Duration,
    /// How long a session waits for the remainder of a request once its
    /// first byte has arrived (slow-writer allowance; the connection is
    /// closed when it expires mid-request).
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 32,
            batch_rows: 1000,
            rate_limit: RateLimitConfig::default(),
            planner: PlannerConfig::default(),
            poll_interval: Duration::from_millis(50),
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// State shared by the listener and every session thread.
pub struct ServerState {
    config: ServerConfig,
    /// Snapshot-swap catalog: readers clone the `Arc` and drop the lock
    /// before executing, so a long query never blocks registration and a
    /// panicking executor can never poison the lock.
    catalog: RwLock<Arc<Catalog>>,
    /// Exported counters.
    pub metrics: ServerMetrics,
    limiter: RateLimiter,
    shutdown: AtomicBool,
    request_counter: AtomicU64,
    /// Queries currently streaming (admission to trailer) — drained to
    /// zero before [`Server::run`] returns.
    pub in_flight_queries: AtomicU64,
    local_addr: SocketAddr,
}

impl ServerState {
    /// The current catalog snapshot.
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog.read().expect("catalog lock poisoned"))
    }

    /// Replace table `name`, snapshot-swapping the catalog (in-flight
    /// queries keep the snapshot they started with).
    pub fn register_table(&self, name: &str, table: ovc_plan::Table) {
        let mut guard = self.catalog.write().expect("catalog lock poisoned");
        let mut next = Catalog::clone(&guard);
        next.register(name, table);
        *guard = Arc::new(next);
    }

    /// Has shutdown been requested?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept; the listener re-checks the flag on
        // every returned connection, so one poke suffices.
        let _ = TcpStream::connect(self.local_addr);
    }

    fn next_request_id(&self) -> String {
        format!(
            "req-{}",
            // ovc-lint: allow(relaxed-ordering-audit) -- monotonic id counter; uniqueness needs atomicity, not ordering
            self.request_counter.fetch_add(1, Ordering::Relaxed)
        )
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A handle for controlling a running server from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Request graceful shutdown: stop accepting, let in-flight queries
    /// stream to their trailers, then let [`Server::run`] return.
    pub fn shutdown(&self) {
        self.state.trigger_shutdown();
    }

    /// The shared state (metrics, catalog, flags).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }
}

impl Server {
    /// Bind the listener and wrap the initial catalog.
    pub fn bind(config: ServerConfig, catalog: Catalog) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let limiter = RateLimiter::new(config.rate_limit);
        let state = Arc::new(ServerState {
            config,
            catalog: RwLock::new(Arc::new(catalog)),
            metrics: ServerMetrics::default(),
            limiter,
            shutdown: AtomicBool::new(false),
            request_counter: AtomicU64::new(0),
            in_flight_queries: AtomicU64::new(0),
            local_addr,
        });
        Ok(Server { listener, state })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// A control handle, cloneable across threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Run the accept loop until shutdown, then join every session
    /// thread.  Returns only after all in-flight work has drained.
    pub fn run(self) -> std::io::Result<()> {
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for conn in self.listener.incoming() {
            if self.state.is_shutting_down() {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            sessions.retain(|h| !h.is_finished());
            // ovc-lint: allow(relaxed-ordering-audit) -- admission gauge: the acceptor is the only incrementer, so the bound cannot be overshot; a dying session's decrement arriving late only under-admits
            let active = self.state.metrics.active_sessions.load(Ordering::Relaxed);
            if active as usize >= self.state.config.max_sessions {
                ServerMetrics::inc(&self.state.metrics.sessions_rejected_total);
                let mut w = BufWriter::new(&stream);
                let _ = write_response(
                    &mut w,
                    503,
                    "Service Unavailable",
                    "application/json",
                    &[("connection", "close"), ("retry-after", "1")],
                    wire::error_body("-", "session pool full").as_bytes(),
                );
                continue;
            }
            ServerMetrics::inc(&self.state.metrics.active_sessions);
            let state = Arc::clone(&self.state);
            sessions.push(std::thread::spawn(move || {
                let _guard = SessionGuard(&state.metrics.active_sessions);
                // Contain session panics to a typed error: one broken
                // connection must never take the acceptor (or the
                // session slot accounting) down with it.
                if let Err(err) = ovc_core::ctx::contain(|| session_loop(&state, stream)) {
                    eprintln!("ovc-server: session aborted: {err}");
                }
            }));
        }
        for h in sessions {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Decrements `active_sessions` when the session thread exits, however
/// it exits.
struct SessionGuard<'a>(&'a AtomicU64);

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        // ovc-lint: allow(relaxed-ordering-audit) -- gauge decrement; see the admission-site note
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Serve one keep-alive connection until the peer closes, an error
/// forces a close, or shutdown is observed between requests.
fn session_loop(state: &ServerState, stream: TcpStream) {
    let peer_ip = stream
        .peer_addr()
        .map(|a| a.ip())
        .unwrap_or(IpAddr::V4(Ipv4Addr::LOCALHOST));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    loop {
        // Wait for the next request in short slices so the shutdown flag
        // is observed promptly — but never abandon a request mid-parse.
        if reader.buffer().is_empty() {
            if state.is_shutting_down() {
                return;
            }
            let _ = stream.set_read_timeout(Some(state.config.poll_interval));
            let mut probe = [0u8; 1];
            match stream.peek(&mut probe) {
                Ok(0) => return, // peer closed
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return,
            }
        }
        // A request has begun; allow a generous window for the rest of
        // it (slow writers), then parse it whole.
        let _ = stream.set_read_timeout(Some(state.config.read_timeout));
        let request = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(ParseError::UnexpectedEof) => return,
            Err(e) => {
                let mut w = BufWriter::new(&stream);
                let status = match e {
                    ParseError::TooLarge(_) => (413, "Payload Too Large"),
                    _ => (400, "Bad Request"),
                };
                let _ = write_response(
                    &mut w,
                    status.0,
                    status.1,
                    "application/json",
                    &[("connection", "close")],
                    wire::error_body("-", &e.to_string()).as_bytes(),
                );
                return;
            }
        };
        let close_after = request.wants_close() || state.is_shutting_down();
        let ok = handle_request(state, &stream, &request, peer_ip, close_after);
        if !ok || close_after {
            return;
        }
    }
}

/// Route and answer one request.  Returns `false` when the connection
/// must close (I/O failure or protocol-level close).
fn handle_request(
    state: &ServerState,
    stream: &TcpStream,
    request: &Request,
    peer_ip: IpAddr,
    close_after: bool,
) -> bool {
    ServerMetrics::inc(&state.metrics.requests_total);
    let request_id = request
        .header("x-request-id")
        .map(str::to_string)
        .unwrap_or_else(|| state.next_request_id());
    let conn_header = if close_after { "close" } else { "keep-alive" };
    let base_headers = [
        ("x-request-id", request_id.as_str()),
        ("connection", conn_header),
    ];
    let mut writer = BufWriter::new(stream);
    let respond =
        |w: &mut BufWriter<&TcpStream>, status: u16, reason: &str, ct: &str, body: &[u8]| {
            write_response(w, status, reason, ct, &base_headers, body).is_ok()
        };

    // Monitoring endpoints bypass the rate limiter by design.
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            let body = format!(
                "{{\"status\":\"ok\",\"active_sessions\":{},\"in_flight_queries\":{},\
                 \"shutting_down\":{}}}\n",
                // ovc-lint: allow(relaxed-ordering-audit) -- statistical health snapshot; momentary drift is fine
                state.metrics.active_sessions.load(Ordering::Relaxed),
                // ovc-lint: allow(relaxed-ordering-audit) -- statistical health snapshot; momentary drift is fine
                state.in_flight_queries.load(Ordering::Relaxed),
                state.is_shutting_down()
            );
            return respond(&mut writer, 200, "OK", "application/json", body.as_bytes());
        }
        ("GET", "/metrics") => {
            let body = state.metrics.render_prometheus();
            return respond(
                &mut writer,
                200,
                "OK",
                "text/plain; version=0.0.4",
                body.as_bytes(),
            );
        }
        _ => {}
    }

    match state.limiter.check(peer_ip) {
        Admission::Allowed => {}
        Admission::Limited(retry_after) => {
            ServerMetrics::inc(&state.metrics.rate_limited_total);
            let retry = retry_after.to_string();
            let headers = [
                ("x-request-id", request_id.as_str()),
                ("connection", conn_header),
                ("retry-after", retry.as_str()),
            ];
            let body = wire::error_body(&request_id, "rate limit exceeded");
            return write_response(
                &mut writer,
                429,
                "Too Many Requests",
                "application/json",
                &headers,
                body.as_bytes(),
            )
            .is_ok();
        }
    }

    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/query") => handle_query(state, writer, request, &request_id, conn_header),
        ("POST", "/tables") => {
            let outcome = parse_body(&request.body).and_then(|doc| {
                let name = doc
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| wire::WireError("table: missing field \"name\"".into()))?
                    .to_string();
                let table = wire::parse_table(&doc)?;
                Ok((name, table))
            });
            match outcome {
                Ok((name, table)) => {
                    let rows = table.len();
                    state.register_table(&name, table);
                    let body =
                        format!("{{\"status\":\"ok\",\"table\":\"{name}\",\"rows\":{rows}}}\n");
                    respond(&mut writer, 200, "OK", "application/json", body.as_bytes())
                }
                Err(e) => respond(
                    &mut writer,
                    400,
                    "Bad Request",
                    "application/json",
                    wire::error_body(&request_id, &e.to_string()).as_bytes(),
                ),
            }
        }
        ("POST", "/shutdown") => {
            state.trigger_shutdown();
            let body =
                format!("{{\"status\":\"shutting_down\",\"request_id\":\"{request_id}\"}}\n");
            // The flag is set, so the session loop closes after this
            // response either way.
            respond(&mut writer, 200, "OK", "application/json", body.as_bytes())
        }
        _ => respond(
            &mut writer,
            404,
            "Not Found",
            "application/json",
            wire::error_body(&request_id, "no such route").as_bytes(),
        ),
    }
}

fn parse_body(body: &[u8]) -> Result<Json, wire::WireError> {
    let text =
        std::str::from_utf8(body).map_err(|_| wire::WireError("body is not valid UTF-8".into()))?;
    Json::parse(text).map_err(wire::WireError)
}

/// `POST /query`: plan, then either answer `explain` in one response or
/// stream `rows`/`analyze` as chunked frames.
fn handle_query(
    state: &ServerState,
    mut writer: BufWriter<&TcpStream>,
    request: &Request,
    request_id: &str,
    conn_header: &str,
) -> bool {
    let base_headers = [("x-request-id", request_id), ("connection", conn_header)];
    let bad_request = |writer: &mut BufWriter<&TcpStream>, msg: &str| {
        write_response(
            writer,
            400,
            "Bad Request",
            "application/json",
            &base_headers,
            wire::error_body(request_id, msg).as_bytes(),
        )
        .is_ok()
    };

    let doc = match parse_body(&request.body) {
        Ok(d) => d,
        Err(e) => return bad_request(&mut writer, &e.to_string()),
    };
    let mode = match doc.get("mode").map(|m| m.as_str()) {
        None => "rows",
        Some(Some(m @ ("rows" | "explain" | "analyze"))) => m,
        Some(other) => {
            return bad_request(
                &mut writer,
                &format!("mode: expected \"rows\", \"explain\", or \"analyze\", got {other:?}"),
            )
        }
    };
    let plan_json = match doc.get("plan") {
        Some(p) => p,
        None => return bad_request(&mut writer, "query: missing field \"plan\""),
    };
    let logical = match wire::parse_plan(plan_json) {
        Ok(p) => p,
        Err(e) => return bad_request(&mut writer, &e.to_string()),
    };

    // Planning and execution run against one catalog snapshot; a
    // concurrent /tables registration cannot shift the ground mid-query.
    let catalog = state.catalog();
    let planner = Planner::new(&catalog, state.config.planner);
    let physical = match planner.plan(&logical) {
        Ok(p) => p,
        Err(e) => {
            ServerMetrics::inc(&state.metrics.query_errors_total);
            return bad_request(&mut writer, &format!("plan error: {e}"));
        }
    };
    let options = ExecOptions {
        batch_size: state.config.planner.batch_size,
        ..ExecOptions::default()
    };

    // Per-query fault context: `x-query-timeout-ms` arms a deadline the
    // executor re-checks at operator and run boundaries; the context is
    // also cancelled if the client disconnects mid-stream.
    let timeout = match request.header("x-query-timeout-ms") {
        None => None,
        Some(v) => match v.trim().parse::<u64>() {
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => {
                return bad_request(
                    &mut writer,
                    "x-query-timeout-ms: expected milliseconds as an unsigned integer",
                )
            }
        },
    };
    let qctx = QueryCtx::build(timeout, None);

    if mode == "explain" {
        let mut body = format!("{{\"status\":\"ok\",\"request_id\":\"{request_id}\",\"explain\":");
        let mut text = String::new();
        wire_escape_into(&mut text, &physical.explain());
        body.push_str(&text);
        body.push_str("}\n");
        return write_response(
            &mut writer,
            200,
            "OK",
            "application/json",
            &base_headers,
            body.as_bytes(),
        )
        .is_ok();
    }

    // Streaming modes.  From here on the query counts as in flight and
    // MUST reach its trailer (or error frame) before shutdown completes.
    state.in_flight_queries.fetch_add(1, Ordering::SeqCst);
    let result = stream_query(
        state,
        &mut writer,
        &base_headers,
        request_id,
        mode,
        &physical,
        &catalog,
        &options,
        &qctx,
    );
    state.in_flight_queries.fetch_sub(1, Ordering::SeqCst);
    // Every streamed query lands in exactly one counter: completed,
    // timed out, cancelled, or failed — so the /metrics series stay
    // individually interpretable.
    match result {
        Ok(None) => {
            ServerMetrics::inc(&state.metrics.queries_total);
            true
        }
        Ok(Some(err)) => {
            match err.reason() {
                "timeout" => ServerMetrics::inc(&state.metrics.queries_timed_out_total),
                "cancelled" => ServerMetrics::inc(&state.metrics.queries_cancelled_total),
                _ => ServerMetrics::inc(&state.metrics.query_errors_total),
            }
            // The error frame and terminal chunk were delivered; the
            // connection stays usable for the next request.
            true
        }
        Err(_) => {
            // The transport died mid-stream (client gone): cancel the
            // context so any work still referencing it stops at its next
            // check, and count the abandonment.  SessionGuard and the
            // in-flight decrement above free the slot either way.
            qctx.cancel();
            ServerMetrics::inc(&state.metrics.queries_cancelled_total);
            false
        }
    }
}

/// Execute and stream one query: header frame, row batches, trailer.
///
/// The header goes out **before** execution starts, so when the
/// executor fails the typed [`ExecError`] is delivered as an `error`
/// frame on the already-open stream (`Ok(Some(err))`); `Err` is a
/// transport failure (the client disconnected mid-stream).
#[allow(clippy::too_many_arguments)]
fn stream_query(
    state: &ServerState,
    writer: &mut BufWriter<&TcpStream>,
    base_headers: &[(&str, &str)],
    request_id: &str,
    mode: &str,
    physical: &ovc_plan::PhysicalPlan,
    catalog: &Catalog,
    options: &ExecOptions,
    qctx: &QueryCtx,
) -> std::io::Result<Option<ExecError>> {
    let stats = Stats::new_shared();
    let before = stats.snapshot();
    let width = physical.props.width;
    let key_len = physical.props.order.len();
    let mut cw = ChunkedWriter::start(
        &mut *writer,
        200,
        "OK",
        "application/x-ndjson",
        base_headers,
    )?;
    cw.chunk(wire::header_frame(request_id, mode, width, key_len).as_bytes())?;

    let executed = if mode == "analyze" {
        execute_ctx_profiled(physical, catalog, &stats, options, qctx).map(|(o, r)| (o, Some(r)))
    } else {
        execute_ctx(physical, catalog, &stats, options, qctx).map(|o| (o, None))
    };
    let (output, profile) = match executed {
        Ok(v) => v,
        Err(err) => {
            // Keep the accounting of the failed attempt — the engine
            // counters reflect work actually performed.
            state.metrics.absorb_query(&stats.snapshot().since(&before));
            cw.chunk(wire::typed_error_frame(err.reason(), &err.to_string()).as_bytes())?;
            cw.finish()?;
            return Ok(Some(err));
        }
    };

    let batch_rows = state.config.batch_rows.max(1);
    let mut seq = 0u64;
    let mut total_rows = 0u64;
    let mut rows_buf: Vec<Vec<u64>> = Vec::with_capacity(batch_rows);
    let mut codes_buf: Vec<u64> = Vec::with_capacity(batch_rows);
    let mut flush = |cw: &mut ChunkedWriter<&mut BufWriter<&TcpStream>>,
                     rows_buf: &mut Vec<Vec<u64>>,
                     codes_buf: &mut Vec<u64>,
                     coded: bool|
     -> std::io::Result<()> {
        if rows_buf.is_empty() {
            return Ok(());
        }
        let codes = if coded {
            Some(codes_buf.as_slice())
        } else {
            None
        };
        cw.chunk(wire::batch_frame(seq, rows_buf, codes).as_bytes())?;
        seq += 1;
        total_rows += rows_buf.len() as u64;
        rows_buf.clear();
        codes_buf.clear();
        Ok(())
    };

    match output {
        Output::Stream(s) => {
            for r in s {
                rows_buf.push(r.row.cols().to_vec());
                codes_buf.push(r.code.raw());
                if rows_buf.len() >= batch_rows {
                    flush(&mut cw, &mut rows_buf, &mut codes_buf, true)?;
                }
            }
            flush(&mut cw, &mut rows_buf, &mut codes_buf, true)?;
        }
        Output::Rows(rows) => {
            for r in rows {
                rows_buf.push(r.cols().to_vec());
                if rows_buf.len() >= batch_rows {
                    flush(&mut cw, &mut rows_buf, &mut codes_buf, false)?;
                }
            }
            flush(&mut cw, &mut rows_buf, &mut codes_buf, false)?;
        }
        Output::Partitions(_) => {
            // The planner always gathers to a single stream at the root;
            // reaching this is a planner bug, reported on the stream.
            cw.chunk(wire::error_frame("plan root is partitioned").as_bytes())?;
            cw.finish()?;
            return Ok(None);
        }
    }

    let delta = stats.snapshot().since(&before);
    state.metrics.absorb_query(&delta);
    ServerMetrics::add(&state.metrics.rows_streamed_total, total_rows);
    ServerMetrics::add(&state.metrics.batches_streamed_total, seq);
    let analyze_text = profile.map(|root| {
        let snapshot = root.snapshot();
        state.metrics.absorb_gauges(&snapshot);
        ovc_plan::render_analyze(physical, &snapshot)
    });
    cw.chunk(wire::trailer_frame(total_rows, seq, &delta, analyze_text.as_deref()).as_bytes())?;
    cw.finish()?;
    Ok(None)
}

/// JSON-escape `s` into `out` (string form, with quotes).
fn wire_escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The deltas of one query, for tests that want to compare a served
/// query's accounting to a direct library run.
pub fn snapshot_delta(stats: &Arc<Stats>, before: &StatsSnapshot) -> StatsSnapshot {
    stats.snapshot().since(before)
}
