//! Served-query throughput: boot the server in-process, load it from
//! concurrent client connections, and write `BENCH_server.json` through
//! the shared snapshot writer (same contract as `BENCH_figures.json`;
//! validate with `validate_snapshot`).
//!
//! Two workloads, each swept over client counts {1, 2, 4, 8}:
//!
//! * `figure5_intersect` — the paper's `SELECT ... INTERSECT` over
//!   pre-sorted tables, the cheap-per-query shape that stresses
//!   request handling;
//! * `batched_group_by` — a dop-4 group-by over an unsorted table with
//!   flat-batch exchanges, the heavy shape that stresses streaming.
//!
//! Correctness is asserted before timing: every client's served rows
//! and codes must equal the direct library execution byte for byte.

use std::time::Instant;

use ovc_bench::snapshot::{BenchEntry, BenchSnapshot};
use ovc_bench::workload::{intersect_tables, table, TableSpec};
use ovc_core::Stats;
use ovc_plan::{
    execute, Aggregate, Catalog, ExecOptions, LogicalPlan, Planner, PlannerConfig, SetOp, Table,
};
use ovc_server::{Client, Server, ServerConfig};

const CLIENTS: [usize; 4] = [1, 2, 4, 8];
const QUERIES_PER_CLIENT: usize = 8;

/// A coded result set: `(row values, offset-value code)` per row.
type CodedRows = Vec<(Vec<u64>, u64)>;

fn main() {
    let rows_per_table = 20_000;
    let (mut t1, mut t2) = intersect_tables(rows_per_table, 42);
    t1.sort();
    t2.sort();
    let heap = table(TableSpec {
        rows: 40_000,
        key_cols: 2,
        payload_cols: 1,
        distinct_per_col: 32,
        seed: 7,
    });
    let mut catalog = Catalog::new();
    let w = t1.first().map(|r| r.width()).unwrap_or(1);
    catalog.register("t1", Table::sorted(t1, w));
    catalog.register("t2", Table::sorted(t2, w));
    catalog.register("heap", Table::unsorted(heap));

    let planner_config = PlannerConfig::default()
        .with_dop(4)
        .with_parallel_threshold(1024)
        .with_batch_size(1024);
    let config = ServerConfig {
        max_sessions: 64,
        planner: planner_config,
        ..ServerConfig::default()
    };

    // Reference answers from direct library execution.
    let intersect_query = LogicalPlan::scan("t1").set_op(LogicalPlan::scan("t2"), SetOp::Intersect);
    let group_query = LogicalPlan::scan("heap")
        .group_by(2, vec![Aggregate::Count, Aggregate::Sum(2)])
        .sort(2);
    let options = ExecOptions {
        batch_size: planner_config.batch_size,
        ..ExecOptions::default()
    };
    let planner = Planner::new(&catalog, planner_config);
    let reference: Vec<(String, CodedRows)> = [
        ("figure5_intersect", &intersect_query),
        ("batched_group_by", &group_query),
    ]
    .into_iter()
    .map(|(name, q)| {
        let plan = planner.plan(q).expect("benchmark query plans");
        let coded: CodedRows = execute(&plan, &catalog, &Stats::new_shared(), &options)
            .into_coded()
            .into_iter()
            .map(|r| (r.row.cols().to_vec(), r.code.raw()))
            .collect();
        (name.to_string(), coded)
    })
    .collect();

    let server = Server::bind(config, catalog).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    // ovc-lint: allow(contained-spawn) -- bench driver: a server panic should crash the run loudly, not be contained into a result
    let runner = std::thread::spawn(move || server.run());

    let wire_queries = [
        (
            "figure5_intersect",
            r#"{"plan": {"set_op": {"left": {"scan": "t1"}, "right": {"scan": "t2"}, "op": "intersect"}}}"#,
        ),
        (
            "batched_group_by",
            r#"{"plan": {"sort": {"input": {"group_by": {"input": {"scan": "heap"}, "group_len": 2, "aggs": ["count", {"sum": 2}]}}, "key_len": 2}}}"#,
        ),
    ];

    // Correctness gate before any timing.
    {
        let mut client = Client::connect(addr).expect("connect");
        for (name, body) in wire_queries {
            let served = client.query(body).expect("served query");
            let expect = &reference.iter().find(|(n, _)| n == name).expect("ref").1;
            assert_eq!(served.rows.len(), expect.len(), "{name}: row count");
            for (i, (row, code)) in expect.iter().enumerate() {
                assert_eq!(&served.rows[i], row, "{name}: row {i}");
                assert_eq!(served.codes[i], *code, "{name}: code {i}");
            }
            println!("{name}: served == library ({} rows)", expect.len());
        }
    }

    let mut snap = BenchSnapshot::new("server");
    for (name, body) in wire_queries {
        let expect_rows = reference
            .iter()
            .find(|(n, _)| n == name)
            .expect("ref")
            .1
            .len();
        for clients in CLIENTS {
            let start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..clients {
                    // ovc-lint: allow(contained-spawn) -- bench client: a failed query must abort the measurement, not be contained
                    scope.spawn(|| {
                        let mut client = Client::connect(addr).expect("connect");
                        for _ in 0..QUERIES_PER_CLIENT {
                            let r = client.query(body).expect("query");
                            assert_eq!(r.rows.len(), expect_rows);
                        }
                    });
                }
            });
            let elapsed = start.elapsed();
            let queries = (clients * QUERIES_PER_CLIENT) as f64;
            let rows = queries * expect_rows as f64;
            println!(
                "{name} clients={clients}: {queries} queries, {:.1} q/s, {:.0} rows/s",
                queries / elapsed.as_secs_f64(),
                rows / elapsed.as_secs_f64()
            );
            snap.push(
                BenchEntry::new(name, format!("clients_{clients}"))
                    .metric("clients", clients as f64)
                    .metric("queries", queries)
                    .metric("rows_streamed", rows)
                    .metric("queries_per_sec", queries / elapsed.as_secs_f64())
                    .metric("rows_per_sec", rows / elapsed.as_secs_f64())
                    .wall("wall_ms", elapsed),
            );
        }
    }

    handle.shutdown();
    runner.join().expect("server thread").expect("server run");

    match snap.write_to(std::path::Path::new(".")) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write snapshot: {e}");
            std::process::exit(1)
        }
    }
}
