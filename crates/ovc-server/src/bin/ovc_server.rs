//! The `ovc-server` binary: serve the query engine over HTTP/1.1.
//!
//! ```text
//! ovc-server [--addr HOST:PORT] [--max-sessions N] [--batch-rows N]
//!            [--dop N] [--rate-per-second N] [--rate-burst N]
//!            [--read-timeout-ms N] [--seed-tables]
//! ```
//!
//! `--seed-tables` registers the paper's Figure-5 intersect tables
//! (`t1`, `t2`, 10k rows each, stored sorted so scans stream exact
//! codes) so smoke tests can query without a registration step.  The
//! process exits cleanly on `POST /shutdown` after draining in-flight
//! queries.

use ovc_plan::{Catalog, PlannerConfig, Table};
use ovc_server::{RateLimitConfig, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: ovc-server [--addr HOST:PORT] [--max-sessions N] [--batch-rows N] \
         [--dop N] [--rate-per-second N] [--rate-burst N] [--read-timeout-ms N] \
         [--seed-tables]"
    );
    std::process::exit(2)
}

fn main() {
    let mut config = ServerConfig::default();
    let mut rate = RateLimitConfig::default();
    let mut planner = PlannerConfig::default().with_batch_size(1024);
    let mut seed_tables = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value ({what})");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("host:port"),
            "--max-sessions" => match value("count").parse() {
                Ok(n) => config.max_sessions = n,
                Err(_) => usage(),
            },
            "--batch-rows" => match value("rows").parse() {
                Ok(n) => config.batch_rows = n,
                Err(_) => usage(),
            },
            "--dop" => match value("threads").parse() {
                Ok(n) => planner = planner.with_dop(n),
                Err(_) => usage(),
            },
            "--rate-per-second" => match value("tokens").parse() {
                Ok(n) => rate.per_second = n,
                Err(_) => usage(),
            },
            "--rate-burst" => match value("tokens").parse() {
                Ok(n) => rate.burst = n,
                Err(_) => usage(),
            },
            "--read-timeout-ms" => match value("milliseconds").parse() {
                Ok(n) => config.read_timeout = std::time::Duration::from_millis(n),
                Err(_) => usage(),
            },
            "--seed-tables" => seed_tables = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    config.rate_limit = rate;
    config.planner = planner;

    let mut catalog = Catalog::new();
    if seed_tables {
        let (t1, t2) = ovc_bench::workload::intersect_tables(10_000, 42);
        let (mut t1, mut t2) = (t1, t2);
        t1.sort();
        t2.sort();
        let w1 = t1.first().map(|r| r.width()).unwrap_or(1);
        let w2 = t2.first().map(|r| r.width()).unwrap_or(1);
        catalog.register("t1", Table::sorted(t1, w1));
        catalog.register("t2", Table::sorted(t2, w2));
        eprintln!("seeded tables t1, t2 (Figure-5 intersect workload, 10k rows each)");
    }

    let server = match Server::bind(config, catalog) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1)
        }
    };
    eprintln!("ovc-server listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        std::process::exit(1)
    }
    eprintln!("ovc-server drained and stopped");
}
