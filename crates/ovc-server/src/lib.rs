//! # ovc-server — the query engine as a network service
//!
//! A threaded HTTP/1.1 server over `std::net` exposing the `ovc-plan`
//! builder API on the wire: clients POST a logical plan as JSON and
//! receive the answer as a stream of row batches riding the flat-batch
//! executor, with exact offset-value codes alongside every ordered
//! result.  No external crates — the workspace builds without crates.io,
//! so the HTTP layer, JSON frames, and rate limiter are all local.
//!
//! The crate exists to demonstrate the paper's claim end to end: the
//! engine's orderings and codes are *properties of the data*, not of the
//! process that computed them.  A query served over a socket returns
//! rows and codes byte-identical to the same plan executed in-process
//! (`tests/server_protocol.rs` proves it under concurrency), which is
//! only possible because every operator under the planner became `Send`
//! — statistics atomic, spill devices per worker — in this PR.
//!
//! ## Pieces
//!
//! * [`http`] — minimal HTTP/1.1: parsing, keep-alive, chunked bodies;
//! * [`wire`] — JSON plan decoding and response frame encoding (codes
//!   travel as decimal strings: they exceed `f64`'s exact range);
//! * [`ratelimit`] — per-IP token buckets;
//! * [`metrics`] — service + engine counters, Prometheus rendering;
//! * [`server`] — accept loop, bounded session pool, routing, streaming
//!   execution, graceful drain-then-exit shutdown.
//!
//! ## Quick start
//!
//! ```
//! use ovc_core::Row;
//! use ovc_plan::{Catalog, Table};
//! use ovc_server::{Server, ServerConfig};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let mut catalog = Catalog::new();
//! catalog.register("t", Table::sorted(vec![Row::new(vec![1]), Row::new(vec![2])], 1));
//! let server = Server::bind(ServerConfig::default(), catalog).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//! let runner = std::thread::spawn(move || server.run());
//!
//! let mut conn = std::net::TcpStream::connect(addr).unwrap();
//! let body = r#"{"plan": {"scan": "t"}}"#;
//! write!(conn, "POST /query HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}", body.len(), body).unwrap();
//! let mut line = String::new();
//! BufReader::new(&conn).read_line(&mut line).unwrap();
//! assert!(line.starts_with("HTTP/1.1 200"));
//!
//! handle.shutdown();
//! runner.join().unwrap().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod ratelimit;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, QueryResult};
pub use metrics::ServerMetrics;
pub use ratelimit::{Admission, RateLimitConfig, RateLimiter};
pub use server::{Server, ServerConfig, ServerHandle, ServerState};
pub use wire::{parse_plan, parse_predicate, parse_table, WireError};
