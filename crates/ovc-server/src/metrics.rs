//! Server-level counters and their Prometheus text rendering.
//!
//! Two layers are exported by `GET /metrics`:
//!
//! * **service counters** — requests, queries, rejections, streamed
//!   rows/batches, live sessions (all `AtomicU64`, relaxed: they are
//!   monotonic tallies, not synchronization);
//! * **engine counters** — the cumulative [`ovc_core::Stats`] across
//!   every served query (comparison counts, spill traffic), i.e. the
//!   paper's cost metrics folded fleet-wide, plus exchange-channel
//!   wait totals folded out of profiled runs.

use std::sync::atomic::{AtomicU64, Ordering};

use ovc_core::metrics::PlanProfile;
use ovc_core::{Stats, StatsSnapshot};

/// All counters the server exports.  One instance lives in the
/// [`crate::server::Server`] and is shared by every session thread.
#[derive(Default)]
pub struct ServerMetrics {
    /// HTTP requests accepted (any route, any outcome).
    pub requests_total: AtomicU64,
    /// Queries executed to completion (trailer sent).
    pub queries_total: AtomicU64,
    /// Queries that failed after admission (parse, plan, or execution
    /// faults other than cancellation/timeout).
    pub query_errors_total: AtomicU64,
    /// Queries cancelled: the client disconnected mid-stream or the
    /// query context was cancelled before completion.
    pub queries_cancelled_total: AtomicU64,
    /// Queries whose `x-query-timeout-ms` deadline expired.
    pub queries_timed_out_total: AtomicU64,
    /// Requests rejected by the per-IP rate limiter (429s).
    pub rate_limited_total: AtomicU64,
    /// Connections rejected because the session pool was full (503s).
    pub sessions_rejected_total: AtomicU64,
    /// Rows streamed in batch frames.
    pub rows_streamed_total: AtomicU64,
    /// Batch frames streamed.
    pub batches_streamed_total: AtomicU64,
    /// Currently live session threads.
    pub active_sessions: AtomicU64,
    /// Exchange-channel producer wait, nanoseconds, summed over profiled
    /// runs (mirrors `ChannelGaugeSnapshot::send_wait`).
    pub exchange_send_wait_ns_total: AtomicU64,
    /// Exchange-channel consumer wait, nanoseconds, summed likewise.
    pub exchange_recv_wait_ns_total: AtomicU64,
    /// Rows that crossed exchange channels in profiled runs.
    pub exchange_rows_total: AtomicU64,
    /// Cumulative engine stats across all served queries.
    pub engine: Stats,
}

impl ServerMetrics {
    /// Bump a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bump a counter by `n`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold one query's engine-stat deltas into the cumulative totals.
    pub fn absorb_query(&self, delta: &StatsSnapshot) {
        self.engine.absorb(delta);
    }

    /// Fold the exchange-channel gauges of a finished profiled run.
    pub fn absorb_gauges(&self, profile: &PlanProfile) {
        for node in profile.nodes() {
            for g in &node.gauges {
                Self::add(
                    &self.exchange_send_wait_ns_total,
                    g.send_wait.as_nanos() as u64,
                );
                Self::add(
                    &self.exchange_recv_wait_ns_total,
                    g.recv_wait.as_nanos() as u64,
                );
                Self::add(&self.exchange_rows_total, g.rows);
            }
        }
    }

    /// Render every counter in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "ovc_requests_total",
            "HTTP requests accepted",
            self.requests_total.load(Ordering::Relaxed),
        );
        counter(
            "ovc_queries_total",
            "Queries completed (trailer sent)",
            self.queries_total.load(Ordering::Relaxed),
        );
        counter(
            "ovc_query_errors_total",
            "Queries failed after admission",
            self.query_errors_total.load(Ordering::Relaxed),
        );
        counter(
            "ovc_queries_cancelled_total",
            "Queries cancelled (client disconnect or explicit cancel)",
            self.queries_cancelled_total.load(Ordering::Relaxed),
        );
        counter(
            "ovc_queries_timed_out_total",
            "Queries whose deadline expired",
            self.queries_timed_out_total.load(Ordering::Relaxed),
        );
        counter(
            "ovc_rate_limited_total",
            "Requests rejected by the per-IP rate limiter",
            self.rate_limited_total.load(Ordering::Relaxed),
        );
        counter(
            "ovc_sessions_rejected_total",
            "Connections rejected by the bounded session pool",
            self.sessions_rejected_total.load(Ordering::Relaxed),
        );
        counter(
            "ovc_rows_streamed_total",
            "Rows streamed in batch frames",
            self.rows_streamed_total.load(Ordering::Relaxed),
        );
        counter(
            "ovc_batches_streamed_total",
            "Batch frames streamed",
            self.batches_streamed_total.load(Ordering::Relaxed),
        );
        let s = self.engine.snapshot();
        counter(
            "ovc_engine_col_value_cmps_total",
            "Column-value comparisons across all served queries",
            s.col_value_cmps,
        );
        counter(
            "ovc_engine_ovc_cmps_total",
            "Offset-value-code comparisons across all served queries",
            s.ovc_cmps,
        );
        counter(
            "ovc_engine_row_cmps_total",
            "Full-row comparisons across all served queries",
            s.row_cmps,
        );
        counter(
            "ovc_engine_rows_spilled_total",
            "Rows spilled to run storage across all served queries",
            s.rows_spilled,
        );
        counter(
            "ovc_engine_rows_read_back_total",
            "Rows read back from run storage across all served queries",
            s.rows_read_back,
        );
        counter(
            "ovc_exchange_send_wait_ns_total",
            "Exchange producer wait (ns) over profiled runs",
            self.exchange_send_wait_ns_total.load(Ordering::Relaxed),
        );
        counter(
            "ovc_exchange_recv_wait_ns_total",
            "Exchange consumer wait (ns) over profiled runs",
            self.exchange_recv_wait_ns_total.load(Ordering::Relaxed),
        );
        counter(
            "ovc_exchange_rows_total",
            "Rows crossing exchange channels in profiled runs",
            self.exchange_rows_total.load(Ordering::Relaxed),
        );
        out.push_str(&format!(
            "# HELP ovc_active_sessions Currently live session threads\n\
             # TYPE ovc_active_sessions gauge\n\
             ovc_active_sessions {}\n",
            self.active_sessions.load(Ordering::Relaxed)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_rendering_has_every_series() {
        let m = ServerMetrics::default();
        ServerMetrics::inc(&m.requests_total);
        ServerMetrics::add(&m.rows_streamed_total, 42);
        m.absorb_query(&StatsSnapshot {
            ovc_cmps: 7,
            ..StatsSnapshot::default()
        });
        ServerMetrics::inc(&m.queries_timed_out_total);
        let text = m.render_prometheus();
        assert!(text.contains("ovc_requests_total 1\n"), "{text}");
        assert!(text.contains("ovc_queries_cancelled_total 0\n"), "{text}");
        assert!(text.contains("ovc_queries_timed_out_total 1\n"), "{text}");
        assert!(text.contains("ovc_rows_streamed_total 42\n"), "{text}");
        assert!(text.contains("ovc_engine_ovc_cmps_total 7\n"), "{text}");
        assert!(text.contains("# TYPE ovc_active_sessions gauge"), "{text}");
        // Every HELP line pairs with a TYPE and a sample.
        let helps = text.matches("# HELP").count();
        let types = text.matches("# TYPE").count();
        assert_eq!(helps, types);
    }
}
