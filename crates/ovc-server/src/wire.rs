//! The wire protocol: JSON on the request side, newline-delimited JSON
//! frames on the response side.
//!
//! Requests carry a [`LogicalPlan`] as nested single-key objects (the
//! builder API, spelled in JSON — see [`parse_plan`]); responses stream
//! frames of three kinds: one `header`, zero or more `batch` frames of
//! ~[`crate::ServerConfig::batch_rows`] rows each, and one `trailer`.
//!
//! ## Why codes travel as strings
//!
//! Offset-value codes are `u64` values with bit 62 set (the *valid* tag),
//! so every code exceeds 2^62 — far past the 2^53 range where an `f64`
//! (and therefore a JSON number in every mainstream parser) is exact.
//! Frames emit codes and row values through [`u64s_json`], which prints
//! them as decimal **strings**; clients parse them back with integer
//! parsers and lose nothing.  Inbound numeric literals (predicates, table
//! rows) pass through `f64` and are exact only up to 2^53, which the
//! protocol documents as its input domain.

use ovc_bench::snapshot::Json;
use ovc_core::{Direction, Row, SortSpec, StatsSnapshot, Value};
use ovc_plan::{Aggregate, JoinType, LogicalPlan, Predicate, SetOp, Table};

/// A request-side failure: the payload could not be understood.  Maps to
/// HTTP 400 with the message in the body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

/// Exact-integer check: inbound numbers must be non-negative integers
/// representable exactly in `f64` (≤ 2^53), because they travel as JSON
/// numbers.
fn as_u64(j: &Json, what: &str) -> Result<u64, WireError> {
    let n = j
        .as_num()
        .ok_or_else(|| WireError(format!("{what}: expected a number, got {j:?}")))?;
    if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
        return err(format!("{what}: {n} is not an exact non-negative integer"));
    }
    Ok(n as u64)
}

fn as_usize(j: &Json, what: &str) -> Result<usize, WireError> {
    Ok(as_u64(j, what)? as usize)
}

fn get<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, WireError> {
    obj.get(key)
        .ok_or_else(|| WireError(format!("{what}: missing field {key:?}")))
}

/// The single key/value pair of a one-entry object — the shape every
/// plan node and predicate uses.
fn single_entry<'a>(j: &'a Json, what: &str) -> Result<(&'a str, &'a Json), WireError> {
    match j {
        Json::Obj(members) if members.len() == 1 => Ok((members[0].0.as_str(), &members[0].1)),
        Json::Obj(members) => err(format!(
            "{what}: expected a single-key object, got {} keys",
            members.len()
        )),
        other => err(format!("{what}: expected an object, got {other:?}")),
    }
}

/// Parse a predicate.
///
/// Leaves are `{"eq":[col,value]}`, `"ne"`, `"lt"`, `"le"`, `"gt"`,
/// `"ge"`; combinators are `{"and":[p,q]}` and `{"or":[p,q]}`.
pub fn parse_predicate(j: &Json) -> Result<Predicate, WireError> {
    let (key, body) = single_entry(j, "predicate")?;
    let pair = |what: &str| -> Result<(usize, Value), WireError> {
        let Some(arr) = body.as_arr() else {
            return err(format!("predicate {what}: expected [col, value]"));
        };
        if arr.len() != 2 {
            return err(format!("predicate {what}: expected exactly [col, value]"));
        }
        Ok((
            as_usize(&arr[0], "column index")?,
            as_u64(&arr[1], "value")?,
        ))
    };
    let sub = |what: &str| -> Result<(Predicate, Predicate), WireError> {
        let Some(arr) = body.as_arr() else {
            return err(format!("predicate {what}: expected [pred, pred]"));
        };
        if arr.len() != 2 {
            return err(format!(
                "predicate {what}: expected exactly two sub-predicates"
            ));
        }
        Ok((parse_predicate(&arr[0])?, parse_predicate(&arr[1])?))
    };
    match key {
        "eq" => pair("eq").map(|(c, v)| Predicate::ColEq(c, v)),
        "ne" => pair("ne").map(|(c, v)| Predicate::ColNe(c, v)),
        "lt" => pair("lt").map(|(c, v)| Predicate::ColLt(c, v)),
        "le" => pair("le").map(|(c, v)| Predicate::ColLe(c, v)),
        "gt" => pair("gt").map(|(c, v)| Predicate::ColGt(c, v)),
        "ge" => pair("ge").map(|(c, v)| Predicate::ColGe(c, v)),
        "and" => sub("and").map(|(a, b)| a.and(b)),
        "or" => sub("or").map(|(a, b)| a.or(b)),
        other => err(format!("predicate: unknown operator {other:?}")),
    }
}

fn parse_aggregate(j: &Json) -> Result<Aggregate, WireError> {
    if let Some("count") = j.as_str() {
        return Ok(Aggregate::Count);
    }
    let (key, body) = single_entry(j, "aggregate")?;
    let col = as_usize(body, "aggregate column")?;
    match key {
        "sum" => Ok(Aggregate::Sum(col)),
        "min" => Ok(Aggregate::Min(col)),
        "max" => Ok(Aggregate::Max(col)),
        "first" => Ok(Aggregate::First(col)),
        "last" => Ok(Aggregate::Last(col)),
        other => err(format!("aggregate: unknown function {other:?}")),
    }
}

fn parse_join_type(j: &Json) -> Result<JoinType, WireError> {
    match j.as_str() {
        Some("inner") => Ok(JoinType::Inner),
        Some("left_outer") => Ok(JoinType::LeftOuter),
        Some("right_outer") => Ok(JoinType::RightOuter),
        Some("full_outer") => Ok(JoinType::FullOuter),
        Some("left_semi") => Ok(JoinType::LeftSemi),
        Some("left_anti") => Ok(JoinType::LeftAnti),
        other => err(format!("join type: unknown {other:?}")),
    }
}

fn parse_set_op(j: &Json) -> Result<SetOp, WireError> {
    match j.as_str() {
        Some("union") => Ok(SetOp::Union),
        Some("union_all") => Ok(SetOp::UnionAll),
        Some("intersect") => Ok(SetOp::Intersect),
        Some("intersect_all") => Ok(SetOp::IntersectAll),
        Some("except") => Ok(SetOp::Except),
        Some("except_all") => Ok(SetOp::ExceptAll),
        other => err(format!("set op: unknown {other:?}")),
    }
}

/// Parse a sort spec: either `{"key_len": n}` (ascending prefix) or
/// `{"dirs": ["asc","desc",...]}`, optionally with `"normalized": true`.
fn parse_sort_spec(j: &Json) -> Result<SortSpec, WireError> {
    let spec = if let Some(k) = j.get("key_len") {
        SortSpec::asc(as_usize(k, "key_len")?)
    } else if let Some(dirs) = j.get("dirs") {
        let Some(arr) = dirs.as_arr() else {
            return err("sort dirs: expected an array");
        };
        let mut ds = Vec::with_capacity(arr.len());
        for d in arr {
            ds.push(match d.as_str() {
                Some("asc") => Direction::Asc,
                Some("desc") => Direction::Desc,
                other => return err(format!("sort direction: unknown {other:?}")),
            });
        }
        SortSpec::with_dirs(&ds)
    } else {
        return err("sort: expected \"key_len\" or \"dirs\"");
    };
    match j.get("normalized") {
        None => Ok(spec),
        Some(b) => match b.as_bool() {
            Some(v) => Ok(spec.with_normalized(v)),
            None => err("sort normalized: expected a boolean"),
        },
    }
}

/// Parse a logical plan from its wire form.
///
/// Every node is a single-key object; inputs nest:
///
/// ```text
/// {"scan": "t1"}
/// {"filter": {"input": ..., "pred": {"gt": [0, 3]}}}
/// {"project": {"input": ..., "cols": [1, 0]}}
/// {"join": {"left": ..., "right": ..., "join_len": 1, "type": "inner"}}
/// {"group_by": {"input": ..., "group_len": 1, "aggs": ["count", {"sum": 2}]}}
/// {"distinct": {"input": ...}}
/// {"set_op": {"left": ..., "right": ..., "op": "intersect"}}
/// {"sort": {"input": ..., "key_len": 2}}
/// {"sort": {"input": ..., "dirs": ["desc", "asc"], "normalized": true}}
/// {"top_k": {"input": ..., "key_len": 1, "k": 10}}
/// ```
pub fn parse_plan(j: &Json) -> Result<LogicalPlan, WireError> {
    let (key, body) = single_entry(j, "plan node")?;
    let input = |b: &Json, what: &str| parse_plan(get(b, "input", what)?);
    match key {
        "scan" => match body.as_str() {
            Some(t) => Ok(LogicalPlan::scan(t)),
            None => err("scan: expected a table name string"),
        },
        "filter" => {
            Ok(input(body, "filter")?.filter(parse_predicate(get(body, "pred", "filter")?)?))
        }
        "project" => {
            let Some(arr) = get(body, "cols", "project")?.as_arr() else {
                return err("project cols: expected an array");
            };
            let cols = arr
                .iter()
                .map(|c| as_usize(c, "project column"))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(input(body, "project")?.project(cols))
        }
        "join" => Ok(parse_plan(get(body, "left", "join")?)?.join(
            parse_plan(get(body, "right", "join")?)?,
            as_usize(get(body, "join_len", "join")?, "join_len")?,
            parse_join_type(get(body, "type", "join")?)?,
        )),
        "group_by" => {
            let Some(arr) = get(body, "aggs", "group_by")?.as_arr() else {
                return err("group_by aggs: expected an array");
            };
            let aggs = arr
                .iter()
                .map(parse_aggregate)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(input(body, "group_by")?.group_by(
                as_usize(get(body, "group_len", "group_by")?, "group_len")?,
                aggs,
            ))
        }
        "distinct" => Ok(input(body, "distinct")?.distinct()),
        "set_op" => Ok(parse_plan(get(body, "left", "set_op")?)?.set_op(
            parse_plan(get(body, "right", "set_op")?)?,
            parse_set_op(get(body, "op", "set_op")?)?,
        )),
        "sort" => Ok(input(body, "sort")?.sort_by(parse_sort_spec(body)?)),
        "top_k" => Ok(input(body, "top_k")?.top_k(
            as_usize(get(body, "key_len", "top_k")?, "key_len")?,
            as_usize(get(body, "k", "top_k")?, "k")?,
        )),
        other => err(format!("plan node: unknown operator {other:?}")),
    }
}

/// Parse a table registration body:
/// `{"rows": [[...], ...]}` plus optional `"sorted_key": n` or
/// `"dirs": [...]` declaring a stored ordering (codes are derived at
/// registration, per Section 4.11).
pub fn parse_table(j: &Json) -> Result<Table, WireError> {
    let Some(arr) = get(j, "rows", "table")?.as_arr() else {
        return err("table rows: expected an array of arrays");
    };
    let mut rows = Vec::with_capacity(arr.len());
    for r in arr {
        let Some(cols) = r.as_arr() else {
            return err("table row: expected an array of values");
        };
        let vals = cols
            .iter()
            .map(|v| as_u64(v, "table value"))
            .collect::<Result<Vec<_>, _>>()?;
        rows.push(Row::new(vals));
    }
    let spec = if j.get("sorted_key").is_some() || j.get("dirs").is_some() {
        Some(parse_sort_spec(&rename_sorted_key(j))?)
    } else {
        None
    };
    match spec {
        None => Ok(Table::unsorted(rows)),
        Some(spec) => {
            if !ovc_core::derive::is_sorted_spec(&rows, &spec) {
                return err(format!("table rows are not ordered under {spec}"));
            }
            Ok(Table::sorted_by(rows, spec))
        }
    }
}

/// `parse_sort_spec` reads `key_len`; table registration spells the same
/// idea `sorted_key`.  Bridge the two without duplicating the parser.
fn rename_sorted_key(j: &Json) -> Json {
    match j {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .map(|(k, v)| {
                    let k = if k == "sorted_key" { "key_len" } else { k };
                    (k.to_string(), v.clone())
                })
                .collect(),
        ),
        other => other.clone(),
    }
}

/// JSON string escaping for the hand-rolled frame writers.
fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `values` as a JSON array of decimal **strings** — the exact
/// u64 emission path (see the module docs on why plain numbers lose
/// bits above 2^53).
pub fn u64s_json(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&v.to_string());
        out.push('"');
    }
    out.push(']');
}

/// The `header` frame opening every streaming response.
pub fn header_frame(request_id: &str, mode: &str, width: usize, key_len: usize) -> String {
    let mut f = String::from("{\"frame\":\"header\",\"request_id\":");
    push_escaped(&mut f, request_id);
    f.push_str(&format!(
        ",\"mode\":\"{mode}\",\"width\":{width},\"key_len\":{key_len}}}\n"
    ));
    f
}

/// One `batch` frame: parallel `rows` / `codes` arrays (codes omitted
/// for unordered outputs), `seq` numbering batches from 0.
pub fn batch_frame(seq: u64, rows: &[Vec<u64>], codes: Option<&[u64]>) -> String {
    let mut f = format!("{{\"frame\":\"batch\",\"seq\":{seq},\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            f.push(',');
        }
        u64s_json(&mut f, r);
    }
    f.push(']');
    if let Some(codes) = codes {
        f.push_str(",\"codes\":");
        u64s_json(&mut f, codes);
    }
    f.push_str("}\n");
    f
}

/// The `trailer` frame closing every streaming response: total rows and
/// batches, the query's own [`StatsSnapshot`] deltas, and (in analyze
/// mode) the rendered profile.
pub fn trailer_frame(
    rows: u64,
    batches: u64,
    stats: &StatsSnapshot,
    analyze: Option<&str>,
) -> String {
    let mut f = format!(
        "{{\"frame\":\"trailer\",\"status\":\"ok\",\"rows\":{rows},\"batches\":{batches},\
         \"stats\":{{\"col_value_cmps\":{},\"ovc_cmps\":{},\"row_cmps\":{},\
         \"rows_spilled\":{},\"rows_read_back\":{}}}",
        stats.col_value_cmps,
        stats.ovc_cmps,
        stats.row_cmps,
        stats.rows_spilled,
        stats.rows_read_back
    );
    if let Some(text) = analyze {
        f.push_str(",\"analyze\":");
        push_escaped(&mut f, text);
    }
    f.push_str("}\n");
    f
}

/// An `error` frame, for failures after the header has already gone out
/// (mid-stream the status line is spent; the frame is the only channel
/// left).
pub fn error_frame(message: &str) -> String {
    let mut f = String::from("{\"frame\":\"error\",\"status\":\"error\",\"message\":");
    push_escaped(&mut f, message);
    f.push_str("}\n");
    f
}

/// An `error` frame with a machine-readable failure `reason` —
/// [`ovc_core::ctx::ExecError::reason`]: `"cancelled"`, `"timeout"`,
/// `"spill_io"`, `"spill_corruption"`, `"spill_budget"`, or
/// `"worker_panic"` — so clients can branch on the fault class without
/// parsing the human-readable message.
pub fn typed_error_frame(reason: &str, message: &str) -> String {
    let mut f = String::from("{\"frame\":\"error\",\"status\":\"error\",\"reason\":");
    push_escaped(&mut f, reason);
    f.push_str(",\"message\":");
    push_escaped(&mut f, message);
    f.push_str("}\n");
    f
}

/// A complete (non-streaming) JSON error body for pre-header failures.
pub fn error_body(request_id: &str, message: &str) -> String {
    let mut f = String::from("{\"status\":\"error\",\"request_id\":");
    push_escaped(&mut f, request_id);
    f.push_str(",\"message\":");
    push_escaped(&mut f, message);
    f.push_str("}\n");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).expect("test JSON parses")
    }

    #[test]
    fn figure5_plan_round_trips() {
        let j = parse(
            r#"{"set_op": {"left": {"scan": "t1"}, "right": {"scan": "t2"},
                           "op": "intersect"}}"#,
        );
        let plan = parse_plan(&j).unwrap();
        let rendered = format!("{plan}");
        assert!(rendered.contains("SetOp Intersect"), "{rendered}");
        assert!(rendered.contains("Scan t1"), "{rendered}");
    }

    #[test]
    fn deep_plan_with_every_operator() {
        let j = parse(
            r#"{"top_k": {"input": {"sort": {"input": {"group_by": {
                 "input": {"join": {"left": {"filter": {"input": {"scan": "a"},
                                             "pred": {"and": [{"gt": [0, 1]}, {"le": [1, 9]}]}}},
                                    "right": {"distinct": {"input": {"scan": "b"}}},
                                    "join_len": 1, "type": "left_outer"}},
                 "group_len": 1, "aggs": ["count", {"sum": 1}, {"max": 2}]}},
                 "dirs": ["desc", "asc"], "normalized": true}},
                 "key_len": 1, "k": 5}}"#,
        );
        let plan = parse_plan(&j).unwrap();
        let rendered = format!("{plan}");
        for needle in [
            "TopK",
            "Sort",
            "GroupBy",
            "Join LeftOuter",
            "Filter",
            "Distinct",
        ] {
            assert!(rendered.contains(needle), "missing {needle}:\n{rendered}");
        }
    }

    #[test]
    fn parse_errors_name_the_problem() {
        for (src, needle) in [
            (r#"{"scan": 7}"#, "table name"),
            (r#"{"warp": {}}"#, "unknown operator"),
            (
                r#"{"filter": {"input": {"scan": "t"}}}"#,
                "missing field \"pred\"",
            ),
            (
                r#"{"filter": {"input": {"scan": "t"}, "pred": {"zz": [0,1]}}}"#,
                "unknown operator",
            ),
            (r#"{"scan": "t", "extra": 1}"#, "single-key"),
        ] {
            let e = parse_plan(&parse(src)).unwrap_err();
            assert!(e.0.contains(needle), "{src} -> {e}");
        }
    }

    #[test]
    fn rejects_inexact_numbers() {
        let e = parse_predicate(&parse(r#"{"gt": [0, 1.5]}"#)).unwrap_err();
        assert!(e.0.contains("not an exact"), "{e}");
        let e = parse_predicate(&parse(r#"{"gt": [0, 18446744073709551615]}"#)).unwrap_err();
        assert!(e.0.contains("not an exact"), "{e}");
    }

    #[test]
    fn table_registration_sorted_and_unsorted() {
        let t = parse_table(&parse(r#"{"rows": [[3,1],[1,2]]}"#)).unwrap();
        assert_eq!(t.sorted_key(), 0);
        let t = parse_table(&parse(r#"{"rows": [[1,2],[3,1]], "sorted_key": 1}"#)).unwrap();
        assert_eq!(t.sorted_key(), 1);
        assert!(t.coded().is_some());
        let e = parse_table(&parse(r#"{"rows": [[3,1],[1,2]], "sorted_key": 1}"#)).unwrap_err();
        assert!(e.0.contains("not ordered"), "{e}");
    }

    #[test]
    fn codes_above_2_53_survive_the_wire() {
        // A real valid-tagged code: bit 62 set, low bits distinguishable.
        let code: u64 = (1 << 62) | 12345;
        let frame = batch_frame(0, &[vec![1, 2]], Some(&[code]));
        // The decimal digits appear verbatim inside a JSON string.
        assert!(frame.contains(&format!("\"{code}\"")), "{frame}");
        let doc = Json::parse(&frame).unwrap();
        let codes = doc.get("codes").unwrap().as_arr().unwrap();
        let back: u64 = codes[0].as_str().unwrap().parse().unwrap();
        assert_eq!(back, code);
    }

    #[test]
    fn frames_are_parseable_json_lines() {
        let h = header_frame("req-1", "rows", 2, 2);
        assert_eq!(
            Json::parse(&h).unwrap().get("frame").unwrap().as_str(),
            Some("header")
        );
        let t = trailer_frame(10, 1, &StatsSnapshot::default(), Some("line1\nline2"));
        let doc = Json::parse(&t).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("analyze").unwrap().as_str(), Some("line1\nline2"));
        let e = error_frame("bad \"quote\"");
        assert_eq!(
            Json::parse(&e).unwrap().get("message").unwrap().as_str(),
            Some("bad \"quote\"")
        );
        let e = typed_error_frame("timeout", "deadline exceeded after 5ms");
        let doc = Json::parse(&e).unwrap();
        assert_eq!(doc.get("frame").unwrap().as_str(), Some("error"));
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("timeout"));
        assert_eq!(
            doc.get("message").unwrap().as_str(),
            Some("deadline exceeded after 5ms")
        );
    }
}
