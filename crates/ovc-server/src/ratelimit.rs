//! Per-IP token-bucket rate limiting.
//!
//! Each client IP owns a bucket of `burst` tokens refilled at
//! `per_second` tokens per second; a request spends one token or — if
//! the bucket is dry — gets 429 with a `retry-after` hint.  `/health`
//! and `/metrics` bypass the limiter so monitoring keeps working while a
//! client is being throttled.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// Limiter configuration.
#[derive(Clone, Copy, Debug)]
pub struct RateLimitConfig {
    /// Steady-state tokens per second per IP.
    pub per_second: f64,
    /// Bucket capacity: how far a client may burst above steady state.
    pub burst: f64,
}

impl Default for RateLimitConfig {
    fn default() -> RateLimitConfig {
        RateLimitConfig {
            per_second: 50.0,
            burst: 100.0,
        }
    }
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// The shared limiter: one bucket per client IP, lazily created full.
pub struct RateLimiter {
    config: RateLimitConfig,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

/// Outcome of one admission check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Admission {
    /// Token spent; serve the request.
    Allowed,
    /// Bucket dry; reject with the suggested `retry-after` in seconds
    /// (time until one token refills, rounded up, at least 1).
    Limited(u64),
}

impl RateLimiter {
    /// A limiter with the given refill/burst policy.
    pub fn new(config: RateLimitConfig) -> RateLimiter {
        RateLimiter {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Admit or reject one request from `ip`, observed at `now`.
    ///
    /// Taking `now` as an argument (rather than sampling inside) keeps
    /// the refill arithmetic deterministic under test.
    pub fn check_at(&self, ip: IpAddr, now: Instant) -> Admission {
        let mut buckets = self.buckets.lock().expect("rate limiter poisoned");
        let bucket = buckets.entry(ip).or_insert(Bucket {
            tokens: self.config.burst,
            last: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.config.per_second).min(self.config.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Admission::Allowed
        } else {
            let wait = (1.0 - bucket.tokens) / self.config.per_second;
            Admission::Limited((wait.ceil() as u64).max(1))
        }
    }

    /// Admit or reject one request from `ip` now.
    pub fn check(&self, ip: IpAddr) -> Admission {
        self.check_at(ip, Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(127, 0, 0, last))
    }

    #[test]
    fn burst_then_limit_then_refill() {
        let rl = RateLimiter::new(RateLimitConfig {
            per_second: 1.0,
            burst: 3.0,
        });
        let t0 = Instant::now();
        for _ in 0..3 {
            assert_eq!(rl.check_at(ip(1), t0), Admission::Allowed);
        }
        match rl.check_at(ip(1), t0) {
            Admission::Limited(retry) => assert!(retry >= 1),
            a => panic!("expected limit, got {a:?}"),
        }
        // After two seconds two tokens are back.
        let t2 = t0 + Duration::from_secs(2);
        assert_eq!(rl.check_at(ip(1), t2), Admission::Allowed);
        assert_eq!(rl.check_at(ip(1), t2), Admission::Allowed);
        assert!(matches!(rl.check_at(ip(1), t2), Admission::Limited(_)));
    }

    #[test]
    fn buckets_are_per_ip() {
        let rl = RateLimiter::new(RateLimitConfig {
            per_second: 1.0,
            burst: 1.0,
        });
        let t0 = Instant::now();
        assert_eq!(rl.check_at(ip(1), t0), Admission::Allowed);
        assert!(matches!(rl.check_at(ip(1), t0), Admission::Limited(_)));
        // A different client is untouched by the first one's exhaustion.
        assert_eq!(rl.check_at(ip(2), t0), Admission::Allowed);
    }

    #[test]
    fn tokens_cap_at_burst() {
        let rl = RateLimiter::new(RateLimitConfig {
            per_second: 100.0,
            burst: 2.0,
        });
        let t0 = Instant::now();
        assert_eq!(rl.check_at(ip(3), t0), Admission::Allowed);
        // A long idle period refills to burst, not beyond.
        let later = t0 + Duration::from_secs(3600);
        assert_eq!(rl.check_at(ip(3), later), Admission::Allowed);
        assert_eq!(rl.check_at(ip(3), later), Admission::Allowed);
        assert!(matches!(rl.check_at(ip(3), later), Admission::Limited(_)));
    }
}
