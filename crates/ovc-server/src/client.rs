//! A minimal blocking client for the wire protocol — the consumer side
//! of DESIGN.md §13, used by the integration tests, the `server_bench`
//! binary, and anyone wanting typed access instead of raw curl.
//!
//! One [`Client`] wraps one keep-alive connection; requests are
//! sequential (issue concurrent queries from concurrent clients, which
//! is how the server is meant to be loaded).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

use ovc_bench::snapshot::Json;

/// A client-side failure: transport, protocol, or a server-reported
/// error (with its HTTP status when one was received).
#[derive(Clone, Debug)]
pub struct ClientError {
    /// HTTP status code, when the failure came in a response (0 for
    /// transport/protocol failures before a status line).
    pub status: u16,
    /// Human-readable description (server `message` field when present).
    pub message: String,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.status == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "HTTP {}: {}", self.status, self.message)
        }
    }
}

fn fail<T>(status: u16, message: impl Into<String>) -> Result<T, ClientError> {
    Err(ClientError {
        status,
        message: message.into(),
    })
}

/// One parsed HTTP response: status, headers, fully-read body (chunked
/// bodies are de-chunked).
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Lowercased header pairs.
    pub headers: Vec<(String, String)>,
    /// The body, de-chunked when the server streamed it.
    pub body: String,
}

impl Response {
    /// First value of the (lowercased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A fully-consumed streamed query: rows, codes (ordered outputs only),
/// and the trailer's accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryResult {
    /// Result rows, in stream order.
    pub rows: Vec<Vec<u64>>,
    /// Offset-value codes parallel to `rows` (empty for unordered
    /// outputs).
    pub codes: Vec<u64>,
    /// Batch frames received.
    pub batches: u64,
    /// `x-request-id` echoed by the server.
    pub request_id: String,
    /// The trailer's engine-stat counters, as `(name, value)` pairs.
    pub stats: Vec<(String, u64)>,
    /// Rendered `EXPLAIN ANALYZE` text (analyze mode only).
    pub analyze: Option<String>,
}

/// One keep-alive connection to an `ovc-server`.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ClientError {
            status: 0,
            message: format!("connect {addr}: {e}"),
        })?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| ClientError {
            status: 0,
            message: e.to_string(),
        })?);
        Ok(Client { stream, reader })
    }

    /// Issue one request and read the whole response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> Result<Response, ClientError> {
        let mut msg = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (k, v) in headers {
            msg.push_str(&format!("{k}: {v}\r\n"));
        }
        msg.push_str("\r\n");
        msg.push_str(body);
        self.stream
            .write_all(msg.as_bytes())
            .and_then(|()| self.stream.flush())
            .map_err(|e| ClientError {
                status: 0,
                message: format!("send: {e}"),
            })?;
        self.read_response()
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => fail(0, "connection closed"),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e) => fail(0, e.to_string()),
        }
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or(ClientError {
                status: 0,
                message: format!("bad status line {status_line:?}"),
            })?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
            }
        }
        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        let body = if chunked {
            let mut body = String::new();
            loop {
                let size_line = self.read_line()?;
                let size =
                    usize::from_str_radix(size_line.trim(), 16).map_err(|_| ClientError {
                        status: 0,
                        message: format!("bad chunk size {size_line:?}"),
                    })?;
                let mut chunk = vec![0u8; size + 2]; // data + trailing CRLF
                self.reader
                    .read_exact(&mut chunk)
                    .map_err(|e| ClientError {
                        status: 0,
                        message: e.to_string(),
                    })?;
                if size == 0 {
                    break;
                }
                body.push_str(
                    std::str::from_utf8(&chunk[..size]).map_err(|e| ClientError {
                        status: 0,
                        message: e.to_string(),
                    })?,
                );
            }
            body
        } else {
            let len: usize = headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(0);
            let mut buf = vec![0u8; len];
            self.reader.read_exact(&mut buf).map_err(|e| ClientError {
                status: 0,
                message: e.to_string(),
            })?;
            String::from_utf8(buf).map_err(|e| ClientError {
                status: 0,
                message: e.to_string(),
            })?
        };
        Ok(Response {
            status,
            headers,
            body,
        })
    }

    /// `GET /health`, parsed.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        let r = self.request("GET", "/health", &[], "")?;
        if r.status != 200 {
            return fail(r.status, r.body);
        }
        Json::parse(&r.body).map_err(|e| ClientError {
            status: 0,
            message: e,
        })
    }

    /// `GET /metrics`, raw Prometheus text.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let r = self.request("GET", "/metrics", &[], "")?;
        if r.status != 200 {
            return fail(r.status, r.body);
        }
        Ok(r.body)
    }

    /// Register a table: `POST /tables`.
    pub fn register_table(&mut self, body: &str) -> Result<Json, ClientError> {
        let r = self.request("POST", "/tables", &[], body)?;
        if r.status != 200 {
            return fail(r.status, r.body);
        }
        Json::parse(&r.body).map_err(|e| ClientError {
            status: 0,
            message: e,
        })
    }

    /// Run a query (`body` is the full request document, e.g.
    /// `{"plan": {...}, "mode": "rows"}`) and collect the streamed
    /// frames into a [`QueryResult`].
    pub fn query(&mut self, body: &str) -> Result<QueryResult, ClientError> {
        self.query_with_headers(body, &[])
    }

    /// As [`Client::query`], with extra request headers (e.g. a caller
    /// chosen `x-request-id`).
    pub fn query_with_headers(
        &mut self,
        body: &str,
        headers: &[(&str, &str)],
    ) -> Result<QueryResult, ClientError> {
        let r = self.request("POST", "/query", headers, body)?;
        if r.status != 200 {
            let message = Json::parse(&r.body)
                .ok()
                .and_then(|d| d.get("message").and_then(Json::as_str).map(str::to_string))
                .unwrap_or(r.body);
            return fail(r.status, message);
        }
        let mut result = QueryResult {
            request_id: r.header("x-request-id").unwrap_or("").to_string(),
            ..QueryResult::default()
        };
        let mut saw_trailer = false;
        for line in r.body.lines().filter(|l| !l.is_empty()) {
            let frame = Json::parse(line).map_err(|e| ClientError {
                status: 0,
                message: format!("bad frame {line:?}: {e}"),
            })?;
            match frame.get("frame").and_then(Json::as_str) {
                Some("header") => {}
                Some("batch") => {
                    result.batches += 1;
                    let rows = frame
                        .get("rows")
                        .and_then(Json::as_arr)
                        .ok_or(ClientError {
                            status: 0,
                            message: "batch frame without rows".into(),
                        })?;
                    for row in rows {
                        result.rows.push(parse_u64s(row)?);
                    }
                    if let Some(codes) = frame.get("codes") {
                        result.codes.extend(parse_u64s(codes)?);
                    }
                }
                Some("trailer") => {
                    saw_trailer = true;
                    if let Some(Json::Obj(members)) = frame.get("stats") {
                        for (k, v) in members {
                            if let Some(n) = v.as_num() {
                                result.stats.push((k.clone(), n as u64));
                            }
                        }
                    }
                    result.analyze = frame
                        .get("analyze")
                        .and_then(Json::as_str)
                        .map(str::to_string);
                }
                Some("error") => {
                    let msg = frame
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown");
                    // Typed frames carry a machine-readable reason
                    // ("timeout", "worker_panic", ...); keep it in the
                    // message so callers can branch on the fault class.
                    let reason = frame.get("reason").and_then(Json::as_str);
                    return fail(
                        200,
                        match reason {
                            Some(r) => format!("server error frame [{r}]: {msg}"),
                            None => format!("server error frame: {msg}"),
                        },
                    );
                }
                other => return fail(0, format!("unknown frame kind {other:?}")),
            }
        }
        if !saw_trailer {
            return fail(0, "stream ended without a trailer frame");
        }
        Ok(result)
    }

    /// `POST /query` in explain mode, returning the rendered plan.
    pub fn explain(&mut self, plan: &str) -> Result<String, ClientError> {
        let body = format!("{{\"plan\": {plan}, \"mode\": \"explain\"}}");
        let r = self.request("POST", "/query", &[], &body)?;
        if r.status != 200 {
            return fail(r.status, r.body);
        }
        let doc = Json::parse(&r.body).map_err(|e| ClientError {
            status: 0,
            message: e,
        })?;
        doc.get("explain")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or(ClientError {
                status: 0,
                message: "response without explain field".into(),
            })
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let r = self.request("POST", "/shutdown", &[("connection", "close")], "")?;
        if r.status != 200 {
            return fail(r.status, r.body);
        }
        Ok(())
    }
}

/// Decode a wire array of decimal-string u64s (the exact-integer path —
/// see `wire`'s module docs).
fn parse_u64s(j: &Json) -> Result<Vec<u64>, ClientError> {
    let Some(arr) = j.as_arr() else {
        return fail(0, "expected an array of decimal strings");
    };
    arr.iter()
        .map(|v| {
            v.as_str().and_then(|s| s.parse().ok()).ok_or(ClientError {
                status: 0,
                message: format!("bad u64 on the wire: {v:?}"),
            })
        })
        .collect()
}
