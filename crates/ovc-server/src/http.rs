//! A minimal HTTP/1.1 layer over `std::net` — request parsing, response
//! writing, and chunked transfer encoding for streaming bodies.
//!
//! This workspace builds without crates.io, so the server speaks just
//! enough HTTP/1.1 for its wire contract (DESIGN.md §13): request line +
//! headers + `Content-Length` bodies in, fixed or chunked responses out,
//! keep-alive by default.  Everything unsupported is rejected loudly with
//! a 4xx instead of guessed at.

use std::io::{BufRead, Write};

/// Largest accepted header block, in bytes (64 KiB — far above any
/// legitimate client, far below a memory-exhaustion vector).
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Largest accepted request body, in bytes (16 MiB — bounds table
/// registration payloads).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Request path, without query string splitting (paths are exact
    /// routes in this protocol).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased at parse time.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the (lowercased) header `name`.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Does the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed the connection before a full request arrived
    /// (clean close between requests parses as `Ok(None)` instead).
    UnexpectedEof,
    /// Malformed request line or header.
    Malformed(String),
    /// Header block or declared body exceeds the fixed limits.
    TooLarge(String),
    /// Socket-level failure.
    Io(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnexpectedEof => write!(f, "connection closed mid-request"),
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
            ParseError::TooLarge(m) => write!(f, "request too large: {m}"),
            ParseError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

/// Read one request off the connection.  `Ok(None)` means the peer
/// closed cleanly between requests (the normal end of a keep-alive
/// session); errors mid-request are surfaced as [`ParseError`].
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, ParseError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(ParseError::Io(e.to_string())),
    }
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Err(ParseError::Malformed(format!("request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!("unsupported {version}")));
    }

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let mut h = String::new();
        match reader.read_line(&mut h) {
            Ok(0) => return Err(ParseError::UnexpectedEof),
            Ok(n) => header_bytes += n,
            Err(e) => return Err(ParseError::Io(e.to_string())),
        }
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ParseError::TooLarge("header block".into()));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(ParseError::Malformed(format!("header {h:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::Malformed(format!("content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge(format!(
            "body of {content_length} bytes"
        )));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(reader, &mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ParseError::UnexpectedEof
            } else {
                ParseError::Io(e.to_string())
            }
        })?;
    }
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Write a complete (non-streaming) response with a `Content-Length`
/// body.  `extra_headers` ride between the standard headers and the
/// blank line.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        body.len()
    )?;
    for (k, v) in extra_headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// A chunked-transfer response body: the streaming half of the wire
/// contract.  Construct with [`ChunkedWriter::start`] (which emits the
/// status line and headers), push frames with [`ChunkedWriter::chunk`],
/// and terminate with [`ChunkedWriter::finish`] — the zero-length chunk
/// is the client's only end-of-stream signal, so a response missing it
/// is detectably truncated (graceful shutdown relies on this: a drained
/// query always reaches `finish`).
pub struct ChunkedWriter<W: Write> {
    w: W,
    bytes: u64,
}

impl<W: Write> ChunkedWriter<W> {
    /// Emit status line and headers and switch the body to chunked mode.
    pub fn start(
        mut w: W,
        status: u16,
        reason: &str,
        content_type: &str,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\n"
        )?;
        for (k, v) in extra_headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        Ok(ChunkedWriter { w, bytes: 0 })
    }

    /// Write one chunk (one protocol frame) and flush it, so clients see
    /// batches as they are produced, not when the query finishes.
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // zero-length chunk would terminate the body
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.bytes += data.len() as u64;
        self.w.flush()
    }

    /// Body bytes written so far (excluding chunk framing).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Terminate the chunked body.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()?;
        Ok(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nX-Request-Id: abc\r\n\r\nbody";
        let mut r = BufReader::new(&raw[..]);
        let req = read_request(&mut r).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, b"body");
        assert_eq!(req.header("x-request-id"), Some("abc"));
        assert!(!req.wants_close());
    }

    #[test]
    fn clean_eof_is_none_mid_request_is_error() {
        let mut r = BufReader::new(&b""[..]);
        assert!(read_request(&mut r).unwrap().is_none());
        let mut r = BufReader::new(&b"GET /health HTTP/1.1\r\n"[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ParseError::UnexpectedEof)
        ));
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        let mut r = BufReader::new(&b"NONSENSE\r\n\r\n"[..]);
        assert!(matches!(
            read_request(&mut r),
            Err(ParseError::Malformed(_))
        ));
        let raw = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let mut r = BufReader::new(raw.as_bytes());
        assert!(matches!(read_request(&mut r), Err(ParseError::TooLarge(_))));
    }

    #[test]
    fn chunked_round_trip_is_valid_http() {
        let mut buf = Vec::new();
        let mut cw =
            ChunkedWriter::start(&mut buf, 200, "OK", "application/x-ndjson", &[]).unwrap();
        cw.chunk(b"{\"a\":1}\n").unwrap();
        cw.chunk(b"{\"b\":2}\n").unwrap();
        assert_eq!(cw.bytes_written(), 16);
        let total = cw.finish().unwrap();
        assert_eq!(total, 16);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("transfer-encoding: chunked"));
        assert!(text.ends_with("0\r\n\r\n"));
        // Chunk sizes are hex.
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"), "{text}");
    }

    #[test]
    fn connection_close_header() {
        let raw = b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(&raw[..]);
        assert!(read_request(&mut r).unwrap().unwrap().wants_close());
    }
}
